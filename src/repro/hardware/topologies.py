"""NoC topology models mapped onto the pipe abstraction (Section 4.2).

The paper's performance model sees the NoC as a pipe — a bandwidth and
an average latency — and tells users how to derive those two parameters
from a concrete topology: a bus is its width with a cycle or two of
arbitration; a hierarchical bus with dedicated per-tensor channels
multiplies the width (Eyeriss' 3x); an ``N x N`` mesh injected from a
corner has bisection bandwidth ``N`` and average latency ``N``; a
systolic store-and-forward chain delivers one neighbor hop per cycle.

Each topology here computes ``(bandwidth, avg_latency, multicast)`` and
converts itself to a :class:`~repro.hardware.accelerator.NoC`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import HardwareError
from repro.hardware.accelerator import NoC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.accelerator import Accelerator


class Topology:
    """Abstract interconnect topology."""

    def bandwidth(self) -> int:
        raise NotImplementedError

    def avg_latency(self) -> int:
        raise NotImplementedError

    def supports_multicast(self) -> bool:
        raise NotImplementedError

    def supports_reduction(self) -> bool:
        """Whether the topology can combine partial sums in the network.

        The preset defaults make the implicit assumptions of the NoC
        cost formulas explicit: store-and-forward fabrics (systolic
        chains) and hierarchical buses with per-tensor channels
        (Eyeriss-style, with local psum accumulation) reduce in the
        network; plain buses, crossbars, and corner-injected meshes
        only move data — partial sums must round-trip through the
        upper buffer.
        """
        raise NotImplementedError

    def as_noc(self) -> NoC:
        """The equivalent pipe-model NoC."""
        return NoC(
            bandwidth=self.bandwidth(),
            avg_latency=self.avg_latency(),
            multicast=self.supports_multicast(),
        )

    def as_accelerator(self, num_pes: int, **overrides) -> "Accelerator":
        """An :class:`Accelerator` with this topology's NoC and capabilities.

        ``spatial_reduction`` defaults to :meth:`supports_reduction` so
        the accelerator's capability flags and the topology stay one
        source of truth; any field can still be overridden.
        """
        from repro.hardware.accelerator import Accelerator

        overrides.setdefault("spatial_reduction", self.supports_reduction())
        return Accelerator(num_pes=num_pes, noc=self.as_noc(), **overrides)


@dataclass(frozen=True)
class Bus(Topology):
    """A single shared bus: full fan-out (multicast) at its wire width."""

    width: int  # elements per cycle
    arbitration_cycles: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise HardwareError("bus width must be >= 1")

    def bandwidth(self) -> int:
        return self.width

    def avg_latency(self) -> int:
        return self.arbitration_cycles + 1

    def supports_multicast(self) -> bool:
        return True

    def supports_reduction(self) -> bool:
        return False  # a shared wire moves data; it cannot add


@dataclass(frozen=True)
class HierarchicalBus(Topology):
    """Two-level bus with dedicated channels per tensor (Eyeriss-style).

    The paper: "Eyeriss has a two-level hierarchical bus with dedicated
    channels for input, weight, and output tensors. Therefore, a
    bandwidth of 3X properly models the top level NoC."
    """

    channel_width: int
    channels: int = 3
    levels: int = 2

    def __post_init__(self) -> None:
        if self.channel_width < 1 or self.channels < 1 or self.levels < 1:
            raise HardwareError("hierarchical bus parameters must be >= 1")

    def bandwidth(self) -> int:
        return self.channel_width * self.channels

    def avg_latency(self) -> int:
        return self.levels  # one cycle of staging per bus level

    def supports_multicast(self) -> bool:
        return True

    def supports_reduction(self) -> bool:
        return True  # dedicated psum channel accumulates on the way up


@dataclass(frozen=True)
class Crossbar(Topology):
    """A full crossbar: per-port bandwidth, constant latency, multicast."""

    ports: int
    port_width: int = 1

    def __post_init__(self) -> None:
        if self.ports < 1 or self.port_width < 1:
            raise HardwareError("crossbar parameters must be >= 1")

    def bandwidth(self) -> int:
        return self.ports * self.port_width

    def avg_latency(self) -> int:
        return 2  # input + output stage

    def supports_multicast(self) -> bool:
        return True

    def supports_reduction(self) -> bool:
        return False  # switches route; partial sums pass through whole


@dataclass(frozen=True)
class Mesh2D(Topology):
    """An N x N mesh injected from a corner (the paper's example).

    Bisection bandwidth N (channel width times N links) and average
    latency of about N hops for uniform traffic from the corner.
    """

    side: int
    channel_width: int = 1

    def __post_init__(self) -> None:
        if self.side < 1 or self.channel_width < 1:
            raise HardwareError("mesh parameters must be >= 1")

    def bandwidth(self) -> int:
        return self.side * self.channel_width

    def avg_latency(self) -> int:
        return self.side

    def supports_multicast(self) -> bool:
        return True  # path-based multicast along rows/columns

    def supports_reduction(self) -> bool:
        return False  # corner-injected mesh has no in-network adders


@dataclass(frozen=True)
class SystolicChain(Topology):
    """A store-and-forward chain (systolic array edge).

    Data enters one end and moves one PE per cycle; the temporal
    multicast of Table 2. Effective bandwidth is the injection width;
    the average latency is half the chain length.
    """

    length: int
    injection_width: int = 1

    def __post_init__(self) -> None:
        if self.length < 1 or self.injection_width < 1:
            raise HardwareError("chain parameters must be >= 1")

    def bandwidth(self) -> int:
        return self.injection_width

    def avg_latency(self) -> int:
        return max(1, self.length // 2)

    def supports_multicast(self) -> bool:
        return True  # forwarding realizes multicast over time

    def supports_reduction(self) -> bool:
        return True  # accumulate-and-forward along the chain


def eyeriss_like_noc(channel_width: int = 4) -> NoC:
    """The Eyeriss configuration the paper quotes (3x channel width)."""
    return HierarchicalBus(channel_width=channel_width).as_noc()


def mesh_noc(num_pes: int, channel_width: int = 1) -> NoC:
    """A square mesh sized for ``num_pes`` (side = ceil(sqrt(num_pes)))."""
    side = max(1, math.isqrt(num_pes))
    if side * side < num_pes:
        side += 1
    return Mesh2D(side=side, channel_width=channel_width).as_noc()
