"""Accelerator and NoC configuration objects.

The abstract machine follows Figure 2 of the paper: ``num_pes``
processing elements, each with a private L1 scratchpad and a
``vector_width``-wide MAC unit; a shared L2 scratchpad; and a
network-on-chip modeled as a pipe with a bandwidth and an average
latency (Section 4.2). Spatial multicast and spatial reduction support
are independent switches so the Table 5 experiment can toggle them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import HardwareError
from repro.util.intmath import ceil_div


@dataclass(frozen=True)
class NoC:
    """Pipe-model network-on-chip.

    ``bandwidth`` is in data elements per cycle (the paper's "data
    points/cycle", Table 5); ``avg_latency`` in cycles. ``multicast``
    enables spatial multicast (fan-out wiring, Table 2): without it, data
    needed by several PEs in a step must be sent once per receiver.
    """

    bandwidth: int = 32
    avg_latency: int = 2
    multicast: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth < 1:
            raise HardwareError(f"NoC bandwidth must be >= 1, got {self.bandwidth}")
        if self.avg_latency < 0:
            raise HardwareError(f"NoC latency must be >= 0, got {self.avg_latency}")

    def delay(self, volume: int) -> int:
        """Cycles to move ``volume`` elements through the pipe."""
        if volume <= 0:
            return 0
        return ceil_div(volume, self.bandwidth) + self.avg_latency


@dataclass(frozen=True)
class Accelerator:
    """A concrete hardware configuration.

    Parameters
    ----------
    num_pes:
        Number of processing elements.
    l1_size, l2_size:
        Per-PE private and shared scratchpad capacities in bytes. ``None``
        means "as large as the dataflow requires" (the paper's DSE sizes
        buffers from the model's reported requirement).
    noc:
        The global (L2-to-PE-array) interconnect.
    spatial_reduction:
        Whether partial sums can be reduced across PEs in the array
        (adder tree / reduce-and-forward, Table 2). Without it, every
        PE's partial sums travel to the upper buffer for accumulation.
    double_buffered:
        Whether buffers are double-buffered so communication overlaps
        compute (the paper's Figure 8 assumption). Disabling it
        serializes fetch/compute/writeback and halves buffer needs —
        an ablation knob.
    vector_width:
        MACs per PE per cycle.
    element_bytes:
        Data element size (2 for 16-bit fixed point).
    clock_ghz:
        Clock frequency, used only to convert to GB/s and seconds.
    """

    num_pes: int = 256
    l1_size: Optional[int] = None
    l2_size: Optional[int] = None
    noc: NoC = NoC()
    spatial_reduction: bool = True
    double_buffered: bool = True
    vector_width: int = 1
    element_bytes: int = 2
    clock_ghz: float = 1.0
    dram_bandwidth: Optional[int] = None  # elements/cycle; None = unbounded

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise HardwareError(f"num_pes must be >= 1, got {self.num_pes}")
        if self.vector_width < 1:
            raise HardwareError(f"vector_width must be >= 1, got {self.vector_width}")
        if self.element_bytes < 1:
            raise HardwareError(f"element_bytes must be >= 1")
        for label, size in (("l1_size", self.l1_size), ("l2_size", self.l2_size)):
            if size is not None and size < 1:
                raise HardwareError(f"{label} must be positive or None, got {size}")
        if self.dram_bandwidth is not None and self.dram_bandwidth < 1:
            raise HardwareError("dram_bandwidth must be positive or None")
        if self.clock_ghz <= 0:
            raise HardwareError("clock_ghz must be positive")

    def with_noc(self, **kwargs) -> "Accelerator":
        """A copy with NoC fields replaced (e.g. ``multicast=False``)."""
        return replace(self, noc=replace(self.noc, **kwargs))

    # ------------------------------------------------------------------
    # Communication capabilities — the one source of truth the comm
    # rules (DF300/DF301), the capability pruning screens, and the cost
    # engines all read. The backing switches are ``spatial_reduction``
    # (the array-level adder tree / reduce-and-forward of Table 2) and
    # ``noc.multicast`` (fan-out wiring); these properties are the
    # canonical spelling so callers never reach into the NoC directly.
    # ------------------------------------------------------------------
    @property
    def reduction_support(self) -> bool:
        """Whether partial sums can be reduced spatially across PEs."""
        return self.spatial_reduction

    @property
    def multicast_support(self) -> bool:
        """Whether the NoC can fan one datum out to many PEs at once."""
        return self.noc.multicast

    def capabilities(self) -> dict:
        """The communication capability flags as a plain dict."""
        return {
            "reduction_support": self.reduction_support,
            "multicast_support": self.multicast_support,
        }

    def bytes_per_cycle(self) -> int:
        """NoC bandwidth in bytes per cycle."""
        return self.noc.bandwidth * self.element_bytes

    def noc_gbps(self) -> float:
        """NoC bandwidth in GB/s at the configured clock."""
        return self.bytes_per_cycle() * self.clock_ghz
