"""Abstract accelerator hardware model (Figure 2 of the paper).

PEs with private L1 scratchpads and MAC units, a shared L2 scratchpad,
and a network-on-chip described by the paper's pipe model (bandwidth +
average latency) with optional spatial multicast and reduction support
(Table 2's hardware implementation choices). Energy, area, and power
come from embedded cost tables calibrated to public CACTI/Eyeriss
ballpark ratios (see DESIGN.md's substitution table).
"""

from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.energy import EnergyModel
from repro.hardware.area import AreaModel

__all__ = ["Accelerator", "NoC", "EnergyModel", "AreaModel"]
