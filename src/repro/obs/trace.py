"""Structured tracing: nested spans with cross-process re-parenting.

A span measures one named region of work::

    with obs.span("engine.reuse", layer=layer.name):
        ...

Nesting is tracked through a :mod:`contextvars` variable, so the span
tree is correct across generators and ``asyncio`` tasks, and each span
records wall time (``time.time_ns`` — comparable across processes on
one machine), CPU time, and free-form attributes.

When tracing is disabled, :func:`span` returns a shared no-op object:
the hot path pays one flag check and no allocation.

Cross-process propagation is explicit: a batch-backend worker calls
:func:`export_spans` at the end of a chunk and ships the plain-dict
payload back with its results; the driver calls :func:`adopt_spans`,
which assigns fresh ids and re-parents the worker's root spans under
the driver's current span, so one trace shows the whole fan-out.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.core import STATE

_CURRENT: ContextVar[Optional[int]] = ContextVar("repro_obs_span", default=None)
_ids = itertools.count(1)
_records: List["SpanRecord"] = []


@dataclass
class SpanRecord:
    """One finished span: timing plus its position in the span tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: int
    dur_ns: int = 0
    cpu_ns: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = field(default_factory=os.getpid)
    tid: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "cpu_ns": self.cpu_ns,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            start_ns=payload["start_ns"],
            dur_ns=payload.get("dur_ns", 0),
            cpu_ns=payload.get("cpu_ns", 0),
            attrs=dict(payload.get("attrs", {})),
            pid=payload.get("pid", 0),
            tid=payload.get("tid", 0),
        )


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span; records itself into the trace buffer on exit."""

    __slots__ = ("record", "_token", "_cpu_start")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.record = SpanRecord(
            span_id=next(_ids),
            parent_id=_CURRENT.get(),
            name=name,
            start_ns=time.time_ns(),
            attrs=attrs,
            tid=threading.get_ident() & 0x7FFFFFFF,
        )

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self.record.span_id)
        self._cpu_start = time.process_time_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.record.cpu_ns = time.process_time_ns() - self._cpu_start
        self.record.dur_ns = time.time_ns() - self.record.start_ns
        _CURRENT.reset(self._token)
        _records.append(self.record)
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the live span."""
        self.record.attrs.update(attrs)
        return self


def span(name: str, **attrs: Any):
    """A context manager timing the named region (no-op when disabled)."""
    if not STATE.enabled:
        return NOOP_SPAN
    return Span(name, attrs)


def current_span_id() -> Optional[int]:
    """The id of the innermost open span, or ``None`` outside any span."""
    return _CURRENT.get()


def spans() -> List[SpanRecord]:
    """A snapshot of every finished span recorded so far."""
    return list(_records)


def clear() -> None:
    """Drop the trace buffer."""
    _records.clear()


def export_spans() -> List[Dict[str, Any]]:
    """The buffer as plain dicts, picklable across process boundaries."""
    return [record.to_dict() for record in _records]


def adopt_spans(
    exported: Iterable[Dict[str, Any]], parent_id: Optional[int] = None
) -> int:
    """Graft spans exported by another process into this trace.

    Ids are remapped to fresh driver-side ids (worker counters collide
    across processes); spans whose parent is not part of the exported
    set — the worker's roots — are re-parented under ``parent_id``
    (default: the driver's current span). Returns the adopted count.
    """
    exported = list(exported)
    if parent_id is None:
        parent_id = _CURRENT.get()
    remap = {payload["span_id"]: next(_ids) for payload in exported}
    for payload in exported:
        record = SpanRecord.from_dict(payload)
        record.span_id = remap[payload["span_id"]]
        record.parent_id = remap.get(payload.get("parent_id"), parent_id)
        _records.append(record)
    return len(exported)
