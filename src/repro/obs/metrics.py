"""Metrics registry: counters, gauges, and fixed-bucket histograms.

A flat, process-local registry addressed by dotted metric names
(``cache.hits``, ``dse.mappings_evaluated``). All writers are gated on
the observability flag — when disabled every call is one boolean check.

Snapshots are plain dicts, so worker processes can ship their registry
back with their results; :func:`merge` folds a worker snapshot into the
driver's registry (counters and histogram buckets add, gauges take the
incoming value).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Sequence

from repro.obs.core import STATE

#: Default histogram bucket upper bounds (seconds-scale observations).
DEFAULT_BUCKETS: Sequence[float] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
)

_counters: Dict[str, float] = {}
_gauges: Dict[str, float] = {}
_histograms: Dict[str, Dict[str, Any]] = {}


def inc(name: str, value: float = 1) -> None:
    """Add ``value`` to the named counter (no-op when disabled)."""
    if not STATE.enabled:
        return
    _counters[name] = _counters.get(name, 0) + value


def set_gauge(name: str, value: float) -> None:
    """Set the named gauge to ``value`` (no-op when disabled)."""
    if not STATE.enabled:
        return
    _gauges[name] = value


def observe(
    name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS
) -> None:
    """Record ``value`` into the named histogram (no-op when disabled).

    Buckets are fixed at first observation; later calls reuse them.
    """
    if not STATE.enabled:
        return
    hist = _histograms.get(name)
    if hist is None:
        bounds = tuple(sorted(buckets))
        hist = _histograms[name] = {
            "buckets": list(bounds),
            "counts": [0] * (len(bounds) + 1),  # last slot = +Inf
            "sum": 0.0,
            "count": 0,
        }
    index = bisect.bisect_left(hist["buckets"], value)
    hist["counts"][index] += 1
    hist["sum"] += value
    hist["count"] += 1


def counter_value(name: str) -> float:
    """The current value of a counter (0 if never incremented)."""
    return _counters.get(name, 0)


def gauge_value(name: str) -> float:
    """The current value of a gauge (0 if never set)."""
    return _gauges.get(name, 0)


def snapshot() -> Dict[str, Any]:
    """A picklable copy of the whole registry."""
    return {
        "counters": dict(_counters),
        "gauges": dict(_gauges),
        "histograms": {
            name: {
                "buckets": list(hist["buckets"]),
                "counts": list(hist["counts"]),
                "sum": hist["sum"],
                "count": hist["count"],
            }
            for name, hist in _histograms.items()
        },
    }


def merge(incoming: Dict[str, Any]) -> None:
    """Fold a snapshot from another process into this registry.

    Counters and histogram bucket counts add up; gauges take the
    incoming value (last writer wins). Unlike the writers this is not
    gated: the driver merges worker payloads while it holds the data.
    """
    for name, value in incoming.get("counters", {}).items():
        _counters[name] = _counters.get(name, 0) + value
    for name, value in incoming.get("gauges", {}).items():
        _gauges[name] = value
    for name, theirs in incoming.get("histograms", {}).items():
        mine = _histograms.get(name)
        if mine is None or list(mine["buckets"]) != list(theirs["buckets"]):
            _histograms[name] = {
                "buckets": list(theirs["buckets"]),
                "counts": list(theirs["counts"]),
                "sum": theirs["sum"],
                "count": theirs["count"],
            }
            continue
        counts: List[int] = mine["counts"]
        for index, count in enumerate(theirs["counts"]):
            counts[index] += count
        mine["sum"] += theirs["sum"]
        mine["count"] += theirs["count"]


def clear() -> None:
    """Drop every counter, gauge, and histogram."""
    _counters.clear()
    _gauges.clear()
    _histograms.clear()
