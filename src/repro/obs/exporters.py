"""Exporters: Chrome/Perfetto trace JSON, Prometheus text, text tables.

Three consumers, three formats:

- :func:`to_perfetto` — the Chrome ``trace_event`` JSON format
  (complete ``"ph": "X"`` events, microsecond timestamps), loadable
  directly in https://ui.perfetto.dev or ``chrome://tracing``;
- :func:`to_prometheus` / :func:`parse_prometheus` — the Prometheus
  text exposition format (the parser exists so tests can prove the
  round trip and scripts can post-process gate output);
- :func:`span_summary_table` / :func:`metrics_table` — human-readable
  summaries built on :mod:`repro.util.text_table`.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.obs.trace import SpanRecord
from repro.util.text_table import format_table

SpanLike = Union[SpanRecord, Mapping[str, Any]]


def _span_dict(span: SpanLike) -> Mapping[str, Any]:
    return span.to_dict() if isinstance(span, SpanRecord) else span


def to_perfetto(spans: Iterable[SpanLike]) -> Dict[str, Any]:
    """The span list as a Chrome ``trace_event`` JSON object.

    Timestamps and durations are microseconds; ``pid``/``tid`` come
    straight from the spans, so process-pool worker spans show up as
    their own process tracks next to the driver's.
    """
    events: List[Dict[str, Any]] = []
    for item in spans:
        record = _span_dict(item)
        name = record["name"]
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": record["start_ns"] / 1000.0,
                "dur": record["dur_ns"] / 1000.0,
                "pid": record["pid"],
                "tid": record["tid"],
                "args": {
                    **record.get("attrs", {}),
                    "span_id": record["span_id"],
                    "parent_id": record.get("parent_id"),
                    "cpu_us": record.get("cpu_ns", 0) / 1000.0,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """A dotted metric name as a legal Prometheus metric name."""
    return prefix + _NAME_RE.sub("_", name)


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """A metrics snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {_format_value(float(hist['sum']))}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r'(?:\{le="(?P<le>[^"]+)"\})?'
    r"\s+(?P<value>\S+)$"
)


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse Prometheus text back into a snapshot-shaped dict.

    Inverse of :func:`to_prometheus` for the subset it emits; the
    round-trip property is asserted by the test suite.
    """
    types: Dict[str, str] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    raw_hist: Dict[str, Dict[str, Any]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable Prometheus sample: {line!r}")
        sample = match.group("name")
        value = float(match.group("value").replace("+Inf", "inf"))
        bound = match.group("le")
        if bound is not None:
            base = sample[: -len("_bucket")]
            hist = raw_hist.setdefault(base, {"buckets": [], "cumulative": []})
            if bound != "+Inf":
                hist["buckets"].append(float(bound))
                hist["cumulative"].append(value)
            continue
        if sample.endswith("_sum") and types.get(sample[:-4]) == "histogram":
            raw_hist.setdefault(sample[:-4], {})["sum"] = value
            continue
        if sample.endswith("_count") and types.get(sample[:-6]) == "histogram":
            raw_hist.setdefault(sample[:-6], {})["count"] = int(value)
            continue
        if sample.endswith("_total") and types.get(sample[:-6]) == "counter":
            counters[sample[:-6]] = value
            continue
        gauges[sample] = value

    histograms: Dict[str, Any] = {}
    for base, hist in raw_hist.items():
        cumulative = hist.get("cumulative", [])
        counts = [
            int(value - (cumulative[index - 1] if index else 0))
            for index, value in enumerate(cumulative)
        ]
        total = hist.get("count", int(cumulative[-1]) if cumulative else 0)
        counts.append(total - (int(cumulative[-1]) if cumulative else 0))
        histograms[base] = {
            "buckets": hist.get("buckets", []),
            "counts": counts,
            "sum": hist.get("sum", 0.0),
            "count": total,
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


# ----------------------------------------------------------------------
# Human-readable summaries
# ----------------------------------------------------------------------
def span_summary(spans: Iterable[SpanLike]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: count, total/self wall time, CPU time.

    ``self_ns`` is wall time minus the time spent in direct children —
    the per-phase number BENCH_obs.json and the overhead gate report,
    since nested phase totals would double-count.
    """
    records = [_span_dict(span) for span in spans]
    child_time: Dict[Any, float] = {}
    for record in records:
        parent = record.get("parent_id")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + record["dur_ns"]
    summary: Dict[str, Dict[str, float]] = {}
    for record in records:
        entry = summary.setdefault(
            record["name"],
            {"count": 0, "total_ns": 0.0, "self_ns": 0.0, "cpu_ns": 0.0},
        )
        entry["count"] += 1
        entry["total_ns"] += record["dur_ns"]
        entry["self_ns"] += record["dur_ns"] - child_time.get(record["span_id"], 0.0)
        entry["cpu_ns"] += record.get("cpu_ns", 0)
    return summary


def span_summary_table(spans: Iterable[SpanLike], title: str = "spans") -> str:
    """The per-name span aggregate as an aligned text table."""
    summary = span_summary(spans)
    grand_total = sum(entry["self_ns"] for entry in summary.values()) or 1.0
    rows = [
        [
            name,
            int(entry["count"]),
            f"{entry['total_ns'] / 1e6:.3f}",
            f"{entry['self_ns'] / 1e6:.3f}",
            f"{entry['cpu_ns'] / 1e6:.3f}",
            f"{entry['self_ns'] / grand_total * 100:.1f}%",
        ]
        for name, entry in sorted(
            summary.items(), key=lambda item: -item[1]["self_ns"]
        )
    ]
    return format_table(
        ["span", "count", "wall (ms)", "self (ms)", "cpu (ms)", "self share"],
        rows,
        title=title,
    )


def metrics_table(snapshot: Mapping[str, Any], title: str = "metrics") -> str:
    """Counters and gauges as an aligned text table."""
    rows: List[List[object]] = []
    for name in sorted(snapshot.get("counters", {})):
        rows.append([name, "counter", snapshot["counters"][name]])
    for name in sorted(snapshot.get("gauges", {})):
        rows.append([name, "gauge", snapshot["gauges"][name]])
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        rows.append([name, "histogram", f"n={hist['count']} mean={mean:.3g}"])
    if not rows:
        rows.append(["(none)", "-", "-"])
    return format_table(["metric", "kind", "value"], rows, title=title)


def span_tree(spans: Iterable[SpanLike], max_depth: Optional[int] = None) -> str:
    """Render the span forest as an indented tree with durations."""
    records = [_span_dict(span) for span in spans]
    ids = {record["span_id"] for record in records}
    children: Dict[Any, List[Mapping[str, Any]]] = {}
    roots: List[Mapping[str, Any]] = []
    for record in records:
        parent = record.get("parent_id")
        if parent in ids:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    lines: List[str] = []

    def walk(record: Mapping[str, Any], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        attrs = record.get("attrs", {})
        suffix = (
            " [" + " ".join(f"{k}={v}" for k, v in attrs.items()) + "]"
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}{record['name']}  "
            f"{record['dur_ns'] / 1e6:.3f} ms (pid {record['pid']}){suffix}"
        )
        for child in sorted(
            children.get(record["span_id"], []), key=lambda r: r["start_ns"]
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda r: r["start_ns"]):
        walk(root, 0)
    return "\n".join(lines)
