"""Observability switchboard: one flag gates every span and metric.

The whole subsystem is off by default. ``configure(enabled=True)`` turns
it on; until then every ``span()`` call returns a shared no-op object
and every metric call is a single boolean check — no allocation, no
locking, no I/O — so instrumented hot paths (the engines, the batch
backend, the simulator) stay within noise of the uninstrumented code.

The flag is process-local. Worker processes spawned by the batch
backend re-enable tracing explicitly for the duration of a chunk and
ship their buffers back to the driver (see
:func:`repro.obs.trace.adopt_spans`).
"""

from __future__ import annotations


class ObsState:
    """Module-level observability state (one instance per process)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


STATE = ObsState()


def is_enabled() -> bool:
    """Whether tracing and metrics collection are currently on."""
    return STATE.enabled


def configure(enabled: bool = True, reset: bool = False) -> None:
    """Turn the observability subsystem on or off.

    With ``reset`` the trace buffer and the metrics registry are cleared
    first — what worker processes do at the start of each chunk so a
    forked child never re-exports spans inherited from the driver.
    """
    if reset:
        from repro.obs import metrics, trace

        trace.clear()
        metrics.clear()
    STATE.enabled = enabled
