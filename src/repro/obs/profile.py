"""Profiling helpers: file writers, per-phase timing, digest lines.

The glue between the tracing/metrics core and its consumers: the
``--trace-out``/``--metrics-out`` CLI flags, the ``repro profile``
subcommand, the bench job's ``BENCH_obs.json``, and the one-line
metrics digest ``dse``/``tune`` always print.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.obs import metrics, trace
from repro.obs.exporters import SpanLike, span_summary, to_perfetto, to_prometheus

#: The span names the engine phases of :func:`repro.engines.analyze_layer`
#: record — the per-phase axis of BENCH_obs.json and the overhead gate.
ENGINE_PHASES = (
    "engine.binding",
    "engine.tensor_analysis",
    "engine.reuse",
    "engine.performance",
    "engine.accounting",
)


def write_trace(
    path: Union[str, Path], spans: Optional[Iterable[SpanLike]] = None
) -> Path:
    """Write the trace buffer (or ``spans``) as Perfetto-loadable JSON."""
    path = Path(path)
    payload = to_perfetto(trace.spans() if spans is None else spans)
    path.write_text(json.dumps(payload, indent=1))
    return path


def write_metrics(
    path: Union[str, Path], snapshot: Optional[Mapping[str, Any]] = None
) -> Path:
    """Write the metrics registry (or ``snapshot``) as Prometheus text."""
    path = Path(path)
    path.write_text(to_prometheus(metrics.snapshot() if snapshot is None else snapshot))
    return path


def phase_timings(
    spans: Optional[Iterable[SpanLike]] = None,
    phases: Iterable[str] = ENGINE_PHASES,
) -> Dict[str, Dict[str, float]]:
    """Per-phase self-time aggregate plus each phase's share of the total.

    Shares are fractions of the summed phase self-time, which makes them
    comparable across machines — the property the bench job's per-phase
    regression check relies on.
    """
    summary = span_summary(trace.spans() if spans is None else spans)
    phases = list(phases)
    total = sum(summary.get(name, {}).get("self_ns", 0.0) for name in phases) or 1.0
    report: Dict[str, Dict[str, float]] = {}
    for name in phases:
        entry = summary.get(name, {"count": 0, "self_ns": 0.0, "cpu_ns": 0.0})
        report[name] = {
            "count": int(entry.get("count", 0)),
            "self_ns": float(entry.get("self_ns", 0.0)),
            "cpu_ns": float(entry.get("cpu_ns", 0.0)),
            "share": float(entry.get("self_ns", 0.0)) / total,
        }
    return report


def digest_line(
    *,
    evaluated: int,
    cost_model_calls: int,
    cache_hits: int,
    pruned_lint: int,
    pruned_verify: int,
    wall_seconds: float,
) -> str:
    """The one-line metrics digest ``dse``/``tune`` print unconditionally.

    Sourced from the sweep's own statistics (not the obs registry), so
    it is accurate with tracing disabled — the default.
    """
    hit_rate = cache_hits / cost_model_calls * 100.0 if cost_model_calls else 0.0
    return (
        f"metrics: evaluated={evaluated} cache-hit={hit_rate:.1f}% "
        f"pruned-by-lint={pruned_lint} pruned-by-verify={pruned_verify} "
        f"wall={wall_seconds:.2f}s"
    )
