"""repro.obs — observability: structured tracing, metrics, exporters.

Zero-dependency instrumentation for the cost-model pipeline. Everything
is off by default and becomes a no-op behind a single module-level flag;
``configure(enabled=True)`` (or any ``--trace-out``/``--metrics-out``
CLI flag, or ``repro profile``) turns it on.

Typical use::

    from repro import obs

    obs.configure(enabled=True)
    with obs.span("engine.reuse", layer="CONV2"):
        ...
    obs.inc("dse.mappings_evaluated", 128)

    from repro.obs.profile import write_metrics, write_trace
    write_trace("trace.json")      # load in https://ui.perfetto.dev
    write_metrics("metrics.prom")  # Prometheus text format

Cross-process: workers call :func:`export_spans` /
:func:`metrics_snapshot` and ship the payloads home; the driver calls
:func:`adopt_spans` / :func:`merge_metrics` to re-parent worker spans
into its own trace (see :mod:`repro.exec.backend`).
"""

from repro.obs.core import configure, is_enabled
from repro.obs.metrics import (
    counter_value,
    gauge_value,
    inc,
    observe,
    set_gauge,
)
from repro.obs.metrics import merge as merge_metrics
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanRecord,
    adopt_spans,
    current_span_id,
    export_spans,
    span,
    spans,
)

__all__ = [
    "configure",
    "is_enabled",
    "span",
    "spans",
    "Span",
    "SpanRecord",
    "NOOP_SPAN",
    "current_span_id",
    "export_spans",
    "adopt_spans",
    "inc",
    "set_gauge",
    "observe",
    "counter_value",
    "gauge_value",
    "metrics_snapshot",
    "merge_metrics",
]
