"""Differential cross-check of the symbolic abstract interpreter.

The abstract engine (:mod:`repro.absint`) claims *soundness*: for every
concrete layer inside a :class:`~repro.absint.shapes.ShapeBox` and every
accelerator inside a :class:`~repro.absint.engine.HardwareBox`, the
concrete cost model's answer lies inside the abstract interval. This
module checks that claim empirically on sampled members — the corners
of the box (where monotone corner evaluation is exercised hardest) plus
the representative layer — and reports every violation with the
offending quantity and sample. It backs the ``analyze --symbolic
--crosscheck`` CLI flag and the Hypothesis soundness suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.absint.engine import AbstractAnalysis, HardwareBox
    from repro.absint.shapes import ShapeBox
    from repro.dataflow.dataflow import Dataflow
    from repro.hardware.accelerator import Accelerator
    from repro.hardware.energy import EnergyModel
    from repro.model.layer import Layer

__all__ = [
    "CHECKED_QUANTITIES",
    "CrosscheckReport",
    "CrosscheckViolation",
    "crosscheck_abstract",
]

#: (name, concrete extractor, abstract extractor) triples checked per sample.
CHECKED_QUANTITIES: Tuple[str, ...] = (
    "runtime",
    "total_ops",
    "utilization",
    "throughput",
    "l1_buffer_req",
    "l2_buffer_req",
    "noc_bw_req_elems",
    "energy_total",
    "edp",
)

#: Relative slack for float quantities: the abstract engine evaluates
#: the *same* IEEE-754 operation trees at interval corners, so bounds
#: hold exactly up to reassociation-free rounding; the slack only
#: absorbs representation noise in the comparison itself.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class CrosscheckViolation:
    """One concrete sample escaping its abstract interval."""

    quantity: str
    layer_name: str
    num_pes: int
    bandwidth: int
    concrete: float
    lo: float
    hi: float

    def describe(self) -> str:
        return (
            f"{self.quantity} = {self.concrete} outside [{self.lo}, {self.hi}] "
            f"for {self.layer_name} @ {self.num_pes} PEs / bw {self.bandwidth}"
        )


@dataclass(frozen=True)
class CrosscheckReport:
    """Outcome of one differential cross-check run."""

    samples: int
    bind_failures: int
    violations: Tuple[CrosscheckViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def _hardware_samples(hw: "HardwareBox") -> "List[Accelerator]":
    """The accelerator corners of a hardware box."""
    from repro.hardware.accelerator import NoC, Accelerator

    accelerators = []
    for num_pes, bandwidth in itertools.product(
        sorted({hw.num_pes.lo, hw.num_pes.hi}),
        sorted({hw.bandwidth.lo, hw.bandwidth.hi}),
    ):
        accelerators.append(
            Accelerator(
                num_pes=num_pes,
                l1_size=hw.l1_size,
                l2_size=hw.l2_size,
                noc=NoC(
                    bandwidth=bandwidth,
                    avg_latency=hw.avg_latency,
                    multicast=hw.multicast,
                ),
                spatial_reduction=hw.spatial_reduction,
                double_buffered=hw.double_buffered,
                vector_width=hw.vector_width,
                element_bytes=hw.element_bytes,
                clock_ghz=hw.clock_ghz,
                dram_bandwidth=hw.dram_bandwidth,
            )
        )
    return accelerators


def crosscheck_abstract(
    box: "ShapeBox",
    dataflow: "Dataflow",
    hw: "HardwareBox",
    abstract: "Optional[AbstractAnalysis]" = None,
    layers: "Optional[List[Layer]]" = None,
    energy_model: "Optional[EnergyModel]" = None,
) -> CrosscheckReport:
    """Check sampled concrete members against the abstract intervals.

    ``abstract`` may be passed when already computed; ``layers``
    overrides the default sample set (box corners + representative).
    Concrete samples that fail to bind are counted, not treated as
    violations — the abstract engine only promises its intervals cover
    the members the concrete model can answer for.
    """
    from repro.absint.engine import abstract_analyze
    from repro.engines.analysis import analyze_layer
    from repro.hardware.energy import DEFAULT_ENERGY_MODEL

    model = energy_model if energy_model is not None else DEFAULT_ENERGY_MODEL
    if abstract is None:
        abstract = abstract_analyze(box, dataflow, hw, energy_model=model)
    if layers is None:
        layers = list(box.corner_layers())
        representative = box.representative_layer()
        if all(layer.dims != representative.dims for layer in layers):
            layers.append(representative)

    samples = 0
    bind_failures = 0
    violations: List[CrosscheckViolation] = []
    for layer in layers:
        if not box.contains(layer):
            raise ValueError(
                f"cross-check sample {layer.name} is not a member of {box}"
            )
        for accelerator in _hardware_samples(hw):
            samples += 1
            try:
                report = analyze_layer(layer, dataflow, accelerator, model)
            except Exception:
                bind_failures += 1
                continue
            pairs = (
                ("runtime", report.runtime, abstract.runtime),
                ("total_ops", report.total_ops, abstract.total_ops),
                ("utilization", report.utilization, abstract.utilization),
                ("throughput", report.throughput, abstract.throughput),
                ("l1_buffer_req", report.l1_buffer_req, abstract.l1_buffer_req),
                ("l2_buffer_req", report.l2_buffer_req, abstract.l2_buffer_req),
                (
                    "noc_bw_req_elems",
                    report.noc_bw_req_elems,
                    abstract.noc_bw_req_elems,
                ),
                ("energy_total", report.energy_total, abstract.energy_total),
                ("edp", report.edp, abstract.edp),
            )
            for name, concrete, interval in pairs:
                slack = _REL_TOL * max(abs(interval.lo), abs(interval.hi), 1.0)
                if interval.lo - slack <= concrete <= interval.hi + slack:
                    continue
                violations.append(
                    CrosscheckViolation(
                        quantity=name,
                        layer_name=layer.name,
                        num_pes=accelerator.num_pes,
                        bandwidth=accelerator.noc.bandwidth,
                        concrete=float(concrete),
                        lo=float(interval.lo),
                        hi=float(interval.hi),
                    )
                )
    return CrosscheckReport(
        samples=samples,
        bind_failures=bind_failures,
        violations=tuple(violations),
    )
