"""Sound iteration-space verifier for data-centric mappings.

Proves — or refutes with a concrete MAC coordinate — that a mapping's
clamped-tile schedule covers the layer's compute space exactly once.
:func:`verify_dataflow` is the entry point; :mod:`repro.verify.audit`
classifies which lint rules the verifier certifies as sound, and
:mod:`repro.verify.reference` is the independent brute-force executor
the differential tests compare against.
"""

from repro.capacity.crosscheck import (
    CapacityCrosscheckReport,
    CapacityMismatch,
    crosscheck_capacity,
)
from repro.comm.crosscheck import (
    CommCrosscheckReport,
    CommMismatch,
    crosscheck_comm,
)
from repro.verify.audit import RuleAudit, audit_rules
from repro.verify.crosscheck import (
    CrosscheckReport,
    CrosscheckViolation,
    crosscheck_abstract,
)
from repro.verify.engine import DEFAULT_BUDGET, count_group_point, verify_dataflow
from repro.verify.reference import REFERENCE_DIMS, brute_force_counts, total_cells
from repro.verify.result import (
    Counterexample,
    GroupReport,
    Verdict,
    VerifyResult,
)
from repro.verify.schedule import bind_for_verification, required_pes

__all__ = [
    "DEFAULT_BUDGET",
    "REFERENCE_DIMS",
    "CapacityCrosscheckReport",
    "CapacityMismatch",
    "CommCrosscheckReport",
    "CommMismatch",
    "Counterexample",
    "CrosscheckReport",
    "CrosscheckViolation",
    "GroupReport",
    "RuleAudit",
    "Verdict",
    "VerifyResult",
    "audit_rules",
    "bind_for_verification",
    "brute_force_counts",
    "count_group_point",
    "crosscheck_abstract",
    "crosscheck_capacity",
    "crosscheck_comm",
    "required_pes",
    "total_cells",
    "verify_dataflow",
]
