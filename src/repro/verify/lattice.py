"""Symbolic exactly-once decisions on interval+stride tilings.

The lattice layer decides coverage *without enumerating chunks*, from
the generator parameters alone. It is deliberately one-sided: a
``PROVEN`` answer is a theorem about the clamped-tile semantics, a
``REFUTED`` answer carries a counterexample cell that is valid for every
schedule shape, and anything it cannot decide returns ``None`` so the
engine falls back to exact enumeration. (One-sidedness is not laziness:
overlapping tiles at one level can be exactly compensated by strided
tiles below — e.g. extent 4 under ``(size=3, offset=1)`` then
``(size=1, offset=2)`` covers {0,2} and {1,3}, exactly once — so no
local per-generator condition can be complete.)

Proof obligations discharged here, in clamped-tile semantics (chunk
``j`` spans ``[j*offset, min(j*offset + size, parent_end))``):

* **Plain axis.** If every generator has ``offset == size``, each level
  partitions its parent tile exactly (trailing chunks are clamped or
  empty but never overlap and never leave gaps), so by induction the
  leaf intervals partition ``[0, extent)``.

* **Sliding axis** (input dim ``Y`` with untiled kernel dim ``R``,
  stride ``st``, dilated kernel span ``E``). Write ``W(L) =
  (L - E) // st + 1`` for the number of windows in an interval of
  length ``L`` (0 when ``L < E``). If every generator on ``Y``
  satisfies ``offset % st == 0``, ``size >= E``, and
  ``offset == st * W(size)``, then the output slots of the chunks of a
  parent interval of *any* length ``L`` tile ``[0, W(L))``
  contiguously: chunk ``j`` contributes windows ``[j*W(size),
  j*W(size) + W(min(size, L - j*offset)))``, and ``W(L) - j*W(size) =
  W(L - j*offset)`` because ``offset`` is a multiple of ``st``. This
  holds recursively for clamped edge chunks, so the full-window-fit
  MAC set is exactly ``{(o, r) : 0 <= o < W(extent), 0 <= r < R}``,
  each pair exactly once. A generator whose ``size`` is below ``E``
  (which bounds every interval under it) admits no window at all, so
  the axis is refuted with the all-zeros cell missed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.verify.schedule import DimSchedule, PlainAxis, SlidingAxis


@dataclass(frozen=True)
class LatticeDecision:
    """Outcome of a symbolic attempt on one axis.

    ``verdict`` is ``"proven"`` or ``"refuted"``; refutations carry the
    violating cell as ``{coord_name: index}`` (its multiplicity is
    computed by the engine's exact point query).
    """

    verdict: str
    detail: str
    cell: Optional[Dict[str, int]] = None


def windows(length: int, span: int, stride: int) -> int:
    """Number of full kernel windows in an interval of ``length``."""
    if length < span:
        return 0
    return (length - span) // stride + 1


def decide_plain(axis: PlainAxis, schedule: DimSchedule) -> Optional[LatticeDecision]:
    """Symbolic decision for a directly tiled coordinate."""
    if any(gen.joint is not None for gen in schedule.gens):
        return None
    if all(gen.offset == gen.size for gen in schedule.gens):
        steps = " -> ".join(
            f"L{gen.level}:{gen.chunks}x(size={gen.size},offset={gen.offset})"
            for gen in schedule.gens
        )
        return LatticeDecision(
            verdict="proven",
            detail=f"exact partition at every level ({steps})",
        )
    return None


def decide_sliding(
    axis: SlidingAxis,
    in_schedule: DimSchedule,
    k_schedule: DimSchedule,
) -> Optional[LatticeDecision]:
    """Symbolic decision for a sliding (output, kernel) coordinate pair."""
    if k_schedule.gens:
        return None
    if any(gen.joint is not None for gen in in_schedule.gens):
        return None
    if not in_schedule.gens:
        return LatticeDecision(
            verdict="proven",
            detail="untiled sliding axis: one window per output position",
        )
    span = axis.kernel_span
    stride = axis.stride
    innermost = in_schedule.gens[-1]
    if innermost.size < span:
        return LatticeDecision(
            verdict="refuted",
            detail=(
                f"innermost {axis.in_dim} chunk size {innermost.size} is below "
                f"the dilated kernel span {span}: no window ever fits"
            ),
            cell={axis.out_name: 0, axis.k_name: 0},
        )
    for gen in in_schedule.gens:
        if gen.offset % stride != 0:
            return None
        if gen.size < span:
            return None
        if gen.offset != stride * windows(gen.size, span, stride):
            return None
    steps = " -> ".join(
        f"L{gen.level}:{gen.chunks}x(size={gen.size},offset={gen.offset}"
        f"={stride}*W({gen.size}))"
        for gen in in_schedule.gens
    )
    return LatticeDecision(
        verdict="proven",
        detail=(
            f"each level's offset advances exactly its windows-per-chunk "
            f"({steps}; window span {span}, stride {stride})"
        ),
    )


def trivial_axis(
    axis: "PlainAxis | SlidingAxis", schedules: Dict[str, DimSchedule]
) -> bool:
    """True when no dimension of the axis has any non-trivial generator."""
    return all(not schedules[dim].gens for dim in axis.dims if dim in schedules)


__all__: Tuple[str, ...] = (
    "LatticeDecision",
    "decide_plain",
    "decide_sliding",
    "trivial_axis",
    "windows",
)
