"""Result types for the iteration-space coverage verifier.

A verification run classifies a (dataflow, layer) pair into one of four
:class:`Verdict` values. ``REFUTED`` results always carry a
:class:`Counterexample`: one concrete MAC coordinate together with the
number of times the schedule executes it (0 for a missed MAC, >= 2 for a
double-counted one). Coordinates are expressed in the *compute space* of
the layer's operator: output rows/columns appear as ``Y'``/``X'`` and
filter taps as ``R``/``S``, so a CONV MAC coordinate is
``{N, K, C, Y', R, X', S}``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class Verdict(enum.Enum):
    """Outcome of verifying one mapping against one layer."""

    PROVEN = "proven"
    """Every MAC in the compute space is executed exactly once."""

    REFUTED = "refuted"
    """A concrete MAC coordinate is missed or double-counted."""

    UNDECIDED = "undecided"
    """The lattice did not apply and enumeration exceeded its budget."""

    INVALID = "invalid"
    """The mapping could not be bound to the layer at all."""


@dataclass(frozen=True)
class Counterexample:
    """A concrete MAC coordinate violating exactly-once coverage."""

    kind: str
    """``"missed"`` (count 0) or ``"double"`` (count >= 2)."""

    coordinate: Dict[str, int]
    """Compute-space coordinate, e.g. ``{"N": 0, "K": 1, "Y'": 3, ...}``."""

    count: int
    """How many times the schedule executes this MAC."""

    def describe(self) -> str:
        coord = ", ".join(f"{dim}={index}" for dim, index in self.coordinate.items())
        if self.kind == "missed":
            return f"MAC ({coord}) is never executed"
        return f"MAC ({coord}) is executed {self.count} times"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "coordinate": dict(self.coordinate),
            "count": self.count,
        }


@dataclass(frozen=True)
class GroupReport:
    """Per independent coordinate group: how its coverage was decided.

    The verifier factorizes the compute space into groups of coordinates
    whose tiling is independent (see ``docs/mapping-verification.md``);
    total multiplicity is the product of per-group multiplicities, so
    exactly-once coverage holds iff it holds for every group.
    """

    dims: Tuple[str, ...]
    """Compute-space coordinates decided together (e.g. ``("Y'", "R")``)."""

    verdict: Verdict
    method: str
    """``"lattice"``, ``"enumeration"``, or ``"trivial"``."""

    cells: int
    """Number of compute-space cells in this group."""

    detail: str = ""
    """Human-readable proof sketch or failure reason."""

    def to_dict(self) -> Dict[str, object]:
        return {
            "dims": list(self.dims),
            "verdict": self.verdict.value,
            "method": self.method,
            "cells": self.cells,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class VerifyResult:
    """Full verdict for one (dataflow, layer) pair."""

    dataflow_name: str
    layer_name: str
    verdict: Verdict
    total_macs: int
    """Size of the compute space (``layer.total_ops()``)."""

    groups: Tuple[GroupReport, ...] = ()
    counterexample: Optional[Counterexample] = None
    message: str = ""
    """Set for INVALID (the binding error) / UNDECIDED (the budget hit)."""

    @property
    def method(self) -> str:
        """Overall decision procedure: worst method used across groups."""
        methods = {group.method for group in self.groups}
        methods.discard("trivial")
        if not methods:
            return "trivial"
        if len(methods) == 1:
            return next(iter(methods))
        return "mixed"

    @property
    def proven(self) -> bool:
        return self.verdict is Verdict.PROVEN

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"{self.dataflow_name} on {self.layer_name}: "
            f"{self.verdict.value.upper()} ({self.method}, "
            f"{self.total_macs} MACs)"
        ]
        for group in self.groups:
            lines.append(
                f"  [{' x '.join(group.dims)}] {group.verdict.value}"
                f" via {group.method} ({group.cells} cells)"
                + (f": {group.detail}" if group.detail else "")
            )
        if self.counterexample is not None:
            lines.append(f"  counterexample: {self.counterexample.describe()}")
        if self.message:
            lines.append(f"  note: {self.message}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "dataflow": self.dataflow_name,
            "layer": self.layer_name,
            "verdict": self.verdict.value,
            "method": self.method,
            "total_macs": self.total_macs,
            "groups": [group.to_dict() for group in self.groups],
        }
        if self.counterexample is not None:
            payload["counterexample"] = self.counterexample.to_dict()
        if self.message:
            payload["message"] = self.message
        return payload
