"""The coverage verifier: exactly-once MAC coverage, with counterexamples.

:func:`verify_dataflow` decides whether a mapping executes every MAC of
a layer's compute space exactly once, under the clamped-tile semantics
of :mod:`repro.engines.binding`:

* chunk ``j`` of a generator spans ``[j*offset, j*offset + size)``
  clamped to its parent tile (a chunk starting at or beyond the parent
  end executes nothing);
* aligned joint spatial distribution: sub-cluster ``j`` takes chunk
  ``j`` along *every* spatially mapped dimension of its level, and a
  dimension with fewer chunks than the level's joint count executes
  nothing for the excess indices;
* a step holding input chunk ``[a, a_end)`` and kernel chunk
  ``[b, b_end)`` on a sliding axis executes the MACs whose full dilated
  window fits the input chunk (see
  :class:`repro.verify.schedule.SlidingAxis`).

The compute space factorizes into independent axis groups (separate
chunk iterators), so the multiplicity of a MAC coordinate is the product
of per-group multiplicities and each group is decided on its own: first
symbolically (:mod:`repro.verify.lattice`), then by exact enumeration
under a cell-update ``budget``. Every counterexample is re-checked with
an independent exact point query before it is reported.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.errors import ReproError
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer
from repro.util.intmath import prod


def _ceil_div_signed(a: int, b: int) -> int:
    """Ceiling division that tolerates a negative dividend (b > 0)."""
    return -((-a) // b)
from repro.verify.lattice import decide_plain, decide_sliding, trivial_axis
from repro.verify.result import Counterexample, GroupReport, Verdict, VerifyResult
from repro.verify.schedule import (
    Axis,
    DimSchedule,
    PlainAxis,
    TileGen,
    bind_for_verification,
    build_axes,
    extract_schedules,
    group_axes,
)

DEFAULT_BUDGET = 2_000_000
"""Default enumeration budget, in compute-cell updates."""

_IterKey = Tuple[str, object]
"""Iterator key: ``("joint", level)`` or ``("free", (dim, gen_index))``."""


def verify_dataflow(
    dataflow: Dataflow,
    layer: Layer,
    accelerator: Optional[Accelerator] = None,
    budget: int = DEFAULT_BUDGET,
    method: str = "auto",
) -> VerifyResult:
    """Verify exactly-once MAC coverage of ``dataflow`` on ``layer``.

    ``method`` is ``"auto"`` (lattice first, enumeration fallback) or
    ``"enumeration"`` (force exact enumeration everywhere — used by the
    differential tests to cross-check the lattice).
    """
    if method not in ("auto", "enumeration"):
        raise ValueError(f"unknown verification method {method!r}")
    try:
        bound = bind_for_verification(dataflow, layer, accelerator)
    except ReproError as error:
        return VerifyResult(
            dataflow_name=dataflow.name,
            layer_name=layer.name,
            verdict=Verdict.INVALID,
            total_macs=0,
            message=f"mapping does not bind: {error}",
        )
    schedules, joint_counts = extract_schedules(bound)
    axes = build_axes(bound)
    axes.extend(_orphan_axes(axes, schedules))
    groups = group_axes(axes, schedules)

    reports: List[GroupReport] = []
    refuted: List[Tuple[int, Dict[str, int]]] = []
    undecided_detail = ""
    for group in groups:
        report, cell = _decide_group(group, schedules, joint_counts, budget, method)
        reports.append(report)
        if report.verdict is Verdict.REFUTED and cell is not None:
            refuted.append((len(reports) - 1, cell))
        elif report.verdict is Verdict.UNDECIDED and not undecided_detail:
            undecided_detail = report.detail

    total_macs = prod(axis.cells for axis in axes)
    if refuted:
        counterexample = _compose_counterexample(
            groups, reports, refuted[0], schedules, joint_counts
        )
        return VerifyResult(
            dataflow_name=dataflow.name,
            layer_name=layer.name,
            verdict=Verdict.REFUTED,
            total_macs=total_macs,
            groups=tuple(reports),
            counterexample=counterexample,
        )
    if any(report.verdict is Verdict.UNDECIDED for report in reports):
        return VerifyResult(
            dataflow_name=dataflow.name,
            layer_name=layer.name,
            verdict=Verdict.UNDECIDED,
            total_macs=total_macs,
            groups=tuple(reports),
            message=undecided_detail,
        )
    return VerifyResult(
        dataflow_name=dataflow.name,
        layer_name=layer.name,
        verdict=Verdict.PROVEN,
        total_macs=total_macs,
        groups=tuple(reports),
    )


def _orphan_axes(axes: Sequence[Axis], schedules: Dict[str, DimSchedule]) -> List[Axis]:
    """Unit axes for scheduled dims outside the operator's compute space.

    A dimension the operator does not compute over (extent 1, e.g. ``Y``
    under FC) can still appear in an active joint-spatial class; its
    "chunk 1 executes nothing" constraint must survive into the group,
    so it gets a one-cell plain axis.
    """
    owned = {dim for axis in axes for dim in axis.dims}
    return [
        PlainAxis(name=dim, dim=dim, extent=schedule.extent)
        for dim, schedule in schedules.items()
        if schedule.gens and dim not in owned
    ]


def _decide_group(
    group: List[Axis],
    schedules: Dict[str, DimSchedule],
    joint_counts: Dict[int, int],
    budget: int,
    method: str,
) -> Tuple[GroupReport, Optional[Dict[str, int]]]:
    coords = tuple(coord for axis in group for coord in axis.coords)
    cells = prod(axis.cells for axis in group)
    if all(trivial_axis(axis, schedules) for axis in group):
        return (
            GroupReport(
                dims=coords,
                verdict=Verdict.PROVEN,
                method="trivial",
                cells=cells,
                detail="single full-extent chunk on every dimension",
            ),
            None,
        )
    if method == "auto" and len(group) == 1:
        axis = group[0]
        if isinstance(axis, PlainAxis):
            decision = decide_plain(axis, schedules[axis.dim])
        else:
            decision = decide_sliding(
                axis, schedules[axis.in_dim], schedules[axis.k_dim]
            )
        if decision is not None:
            if decision.verdict == "proven":
                return (
                    GroupReport(
                        dims=coords,
                        verdict=Verdict.PROVEN,
                        method="lattice",
                        cells=cells,
                        detail=decision.detail,
                    ),
                    None,
                )
            cell = dict(decision.cell or {})
            count = count_group_point(group, schedules, joint_counts, cell)
            if count != 1:
                return (
                    GroupReport(
                        dims=coords,
                        verdict=Verdict.REFUTED,
                        method="lattice",
                        cells=cells,
                        detail=decision.detail,
                    ),
                    cell,
                )
            # The symbolic refutation failed its exact re-check; fall
            # through to enumeration rather than report a bogus cell.
    return _enumerate_group(group, schedules, joint_counts, budget, coords, cells)


def _group_iterators(
    group: List[Axis],
    schedules: Dict[str, DimSchedule],
    joint_counts: Dict[int, int],
) -> "List[Tuple[_IterKey, int]]":
    """Chunk iterators of a group: one per joint class, one per free gen."""
    iterators: "List[Tuple[_IterKey, int]]" = []
    seen_joint: "set[int]" = set()
    for axis in group:
        for dim in axis.dims:
            for index, gen in enumerate(schedules[dim].gens):
                if gen.joint is None:
                    iterators.append((("free", (dim, index)), gen.chunks))
                elif gen.joint not in seen_joint:
                    seen_joint.add(gen.joint)
                    iterators.append((("joint", gen.joint), joint_counts[gen.joint]))
    return iterators


def _chunk_interval(
    dim: str,
    extent: int,
    gens: Sequence[TileGen],
    assignment: Dict[_IterKey, int],
) -> Optional[Tuple[int, int]]:
    """Absolute interval executed along ``dim`` for one chunk assignment.

    Returns ``None`` when some chunk index is out of range or clamped to
    emptiness — the step executes nothing at all.
    """
    start = 0
    end = extent
    for index, gen in enumerate(gens):
        key: _IterKey = (
            ("joint", gen.joint) if gen.joint is not None else ("free", (dim, index))
        )
        j = assignment[key]
        if j >= gen.chunks:
            return None
        start = start + j * gen.offset
        if start >= end:
            return None
        end = min(start + gen.size, end)
    return (start, end)


def _axis_cells(
    axis: Axis,
    schedules: Dict[str, DimSchedule],
    assignment: Dict[_IterKey, int],
) -> Optional[List[int]]:
    """Local cell indices the axis executes for one chunk assignment."""
    if isinstance(axis, PlainAxis):
        interval = _chunk_interval(
            axis.dim, axis.extent, schedules[axis.dim].gens, assignment
        )
        if interval is None:
            return None
        return list(range(interval[0], interval[1]))
    in_interval = _chunk_interval(
        axis.in_dim, axis.in_extent, schedules[axis.in_dim].gens, assignment
    )
    if in_interval is None:
        return None
    k_interval = _chunk_interval(
        axis.k_dim, axis.k_extent, schedules[axis.k_dim].gens, assignment
    )
    if k_interval is None:
        return None
    a, a_end = in_interval
    b, b_end = k_interval
    dilation = axis.dilation
    low = max(0, _ceil_div_signed(a - b * dilation, axis.stride))
    high = (a_end - 1 - (b_end - 1) * dilation) // axis.stride
    high = min(high, axis.out_extent - 1)
    if high < low:
        return []
    cells = []
    for out in range(low, high + 1):
        base = out * axis.k_extent
        cells.extend(range(base + b, base + b_end))
    return cells


def _enumerate_group(
    group: List[Axis],
    schedules: Dict[str, DimSchedule],
    joint_counts: Dict[int, int],
    budget: int,
    coords: Tuple[str, ...],
    cells: int,
) -> Tuple[GroupReport, Optional[Dict[str, int]]]:
    iterators = _group_iterators(group, schedules, joint_counts)
    keys = [key for key, _ in iterators]
    combos = prod(count for _, count in iterators)
    per_combo_bound = prod(_steady_cell_bound(axis, schedules) for axis in group)
    if cells > budget or combos * per_combo_bound > budget:
        return (
            GroupReport(
                dims=coords,
                verdict=Verdict.UNDECIDED,
                method="enumeration",
                cells=cells,
                detail=(
                    f"enumeration needs ~{combos * per_combo_bound} cell updates, "
                    f"budget is {budget}"
                ),
            ),
            None,
        )

    strides = _axis_strides(group)
    counts = [0] * cells
    updates = 0
    for combo in itertools.product(*(range(count) for _, count in iterators)):
        assignment = dict(zip(keys, combo))
        axis_cells: List[List[int]] = []
        dead = False
        for axis in group:
            local = _axis_cells(axis, schedules, assignment)
            if local is None or not local:
                dead = True
                break
            axis_cells.append(local)
        if dead:
            continue
        updates += prod(len(local) for local in axis_cells)
        if updates > budget:
            return (
                GroupReport(
                    dims=coords,
                    verdict=Verdict.UNDECIDED,
                    method="enumeration",
                    cells=cells,
                    detail=f"enumeration exceeded its budget of {budget} cell updates",
                ),
                None,
            )
        for locals_ in itertools.product(*axis_cells):
            index = 0
            for local, stride in zip(locals_, strides):
                index += local * stride
            counts[index] += 1

    first_missed = None
    first_double = None
    for index, count in enumerate(counts):
        if count == 0 and first_missed is None:
            first_missed = index
        elif count > 1 and first_double is None:
            first_double = index
        if first_missed is not None:
            break
    bad = first_missed if first_missed is not None else first_double
    if bad is None:
        return (
            GroupReport(
                dims=coords,
                verdict=Verdict.PROVEN,
                method="enumeration",
                cells=cells,
                detail=f"exhaustive: all {cells} cells covered exactly once",
            ),
            None,
        )
    cell = _decode_cell(group, strides, bad)
    observed = counts[bad]
    check = count_group_point(group, schedules, joint_counts, cell)
    assert check == observed, (
        f"point query ({check}) disagrees with enumeration ({observed}) at {cell}"
    )
    kind = "missed" if observed == 0 else "double"
    return (
        GroupReport(
            dims=coords,
            verdict=Verdict.REFUTED,
            method="enumeration",
            cells=cells,
            detail=f"cell {cell} covered {observed} times ({kind})",
        ),
        cell,
    )


def _steady_cell_bound(axis: Axis, schedules: Dict[str, DimSchedule]) -> int:
    """Upper bound on cells one chunk assignment touches on this axis."""
    if isinstance(axis, PlainAxis):
        gens = schedules[axis.dim].gens
        return gens[-1].size if gens else axis.extent
    in_gens = schedules[axis.in_dim].gens
    k_gens = schedules[axis.k_dim].gens
    in_size = in_gens[-1].size if in_gens else axis.in_extent
    k_size = k_gens[-1].size if k_gens else axis.k_extent
    return (in_size // axis.stride + 1) * k_size


def _axis_strides(group: Sequence[Axis]) -> List[int]:
    strides = [1] * len(group)
    for index in range(len(group) - 2, -1, -1):
        strides[index] = strides[index + 1] * group[index + 1].cells
    return strides


def _decode_cell(
    group: Sequence[Axis], strides: Sequence[int], index: int
) -> Dict[str, int]:
    cell: Dict[str, int] = {}
    for axis, stride in zip(group, strides):
        local = (index // stride) % axis.cells
        if isinstance(axis, PlainAxis):
            cell[axis.name] = local
        else:
            cell[axis.out_name] = local // axis.k_extent
            cell[axis.k_name] = local % axis.k_extent
    return cell


def count_group_point(
    group: List[Axis],
    schedules: Dict[str, DimSchedule],
    joint_counts: Dict[int, int],
    cell: Dict[str, int],
) -> int:
    """Exact multiplicity of one group cell, by pruned chunk search.

    Candidate chunk indices per generator are computed from the target
    cell (a superset; clamping is re-checked exactly), so the search
    space stays tiny even when full enumeration would not.
    """
    iterators = _group_iterators(group, schedules, joint_counts)
    candidates: Dict[_IterKey, "set[int] | None"] = {key: None for key, _ in iterators}

    def narrow(key: _IterKey, allowed: Iterable[int]) -> None:
        allowed_set = set(allowed)
        current = candidates[key]
        candidates[key] = allowed_set if current is None else current & allowed_set

    for axis in group:
        targets = _dim_targets(axis, cell)
        for dim, (low, high) in targets.items():
            for index, gen in enumerate(schedules[dim].gens):
                key: _IterKey = (
                    ("joint", gen.joint)
                    if gen.joint is not None
                    else ("free", (dim, index))
                )
                # Chunk j can only matter if [j*offset, j*offset + size)
                # intersects the target's absolute window [low, high].
                j_low = max(0, _ceil_div_signed(low - gen.size + 1, gen.offset))
                j_high = min(gen.chunks - 1, high // gen.offset)
                narrow(key, range(j_low, j_high + 1))

    lists: List[List[int]] = []
    for key, count in iterators:
        chosen = candidates[key]
        lists.append(sorted(chosen) if chosen is not None else list(range(count)))

    keys = [key for key, _ in iterators]
    total = 0
    for combo in itertools.product(*lists):
        assignment = dict(zip(keys, combo))
        if all(_axis_covers(axis, schedules, assignment, cell) for axis in group):
            total += 1
    return total


def _dim_targets(axis: Axis, cell: Dict[str, int]) -> Dict[str, Tuple[int, int]]:
    """Per-dimension absolute index windows relevant to a target cell."""
    if isinstance(axis, PlainAxis):
        target = cell[axis.name]
        return {axis.dim: (target, target)}
    out = cell[axis.out_name]
    k = cell[axis.k_name]
    window_start = out * axis.stride
    window_end = window_start + axis.kernel_span - 1
    return {
        axis.in_dim: (window_start, window_end),
        axis.k_dim: (k, k),
    }


def _axis_covers(
    axis: Axis,
    schedules: Dict[str, DimSchedule],
    assignment: Dict[_IterKey, int],
    cell: Dict[str, int],
) -> bool:
    if isinstance(axis, PlainAxis):
        interval = _chunk_interval(
            axis.dim, axis.extent, schedules[axis.dim].gens, assignment
        )
        if interval is None:
            return False
        return interval[0] <= cell[axis.name] < interval[1]
    in_interval = _chunk_interval(
        axis.in_dim, axis.in_extent, schedules[axis.in_dim].gens, assignment
    )
    if in_interval is None:
        return False
    k_interval = _chunk_interval(
        axis.k_dim, axis.k_extent, schedules[axis.k_dim].gens, assignment
    )
    if k_interval is None:
        return False
    k = cell[axis.k_name]
    if not (k_interval[0] <= k < k_interval[1]):
        return False
    out = cell[axis.out_name]
    if not (0 <= out < axis.out_extent):
        return False
    a, a_end = in_interval
    b, b_end = k_interval
    position = out * axis.stride
    return (
        position + b * axis.dilation >= a
        and position + (b_end - 1) * axis.dilation <= a_end - 1
    )


def _compose_counterexample(
    groups: List[List[Axis]],
    reports: List[GroupReport],
    refutation: Tuple[int, Dict[str, int]],
    schedules: Dict[str, DimSchedule],
    joint_counts: Dict[int, int],
) -> Counterexample:
    """Extend a refuted group's cell to a full compute-space coordinate.

    Proven sibling groups cover every cell exactly once, so filling them
    with zeros multiplies the count by one; for (rare) undecided
    siblings the zero cell's exact count is computed, keeping the
    product — and hence the reported multiplicity — exact.
    """
    group_index, cell = refutation
    coordinate: Dict[str, int] = {}
    count = count_group_point(
        groups[group_index], schedules, joint_counts, cell
    )
    coordinate.update(cell)
    for index, group in enumerate(groups):
        if index == group_index:
            continue
        zero_cell = {coord: 0 for axis in group for coord in axis.coords}
        coordinate.update(zero_cell)
        if reports[index].verdict is Verdict.PROVEN:
            continue
        count *= count_group_point(group, schedules, joint_counts, zero_cell)
    kind = "missed" if count == 0 else "double"
    return Counterexample(kind=kind, coordinate=coordinate, count=count)
