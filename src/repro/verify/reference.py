"""Independent brute-force executor for differential validation.

This module re-executes a bound schedule the *slow, obvious* way — a
full odometer over every level's spatial and temporal chunks, clamping
intervals as it descends, then enumerating each leaf step's MACs point
by point — and tallies how often every compute-space coordinate runs.
It deliberately shares nothing with :mod:`repro.verify.engine` beyond
the binding itself (the semantics source): no generator extraction, no
axis grouping, no lattice, no pruning. The differential tests require
the verifier's verdicts to agree with these counts exactly.

Coordinates are always the full 7-tuple ``(N, K, C, Y', R, X', S)``
(unit extents for dimensions the operator does not use).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.engines.binding import BoundLevel
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer
from repro.tensors import dims as D
from repro.util.intmath import prod
from repro.verify.schedule import bind_for_verification

REFERENCE_DIMS: Tuple[str, ...] = (D.N, D.K, D.C, D.YP, D.R, D.XP, D.S)

Coordinate = Tuple[int, int, int, int, int, int, int]
Region = Dict[str, Tuple[int, int]]


def brute_force_counts(
    dataflow: Dataflow,
    layer: Layer,
    accelerator: Optional[Accelerator] = None,
    limit: int = 20_000_000,
) -> Dict[Coordinate, int]:
    """Execute the schedule naively; count every MAC coordinate.

    Raises :class:`ValueError` when the walk would exceed ``limit`` MAC
    visits (differential tests must stick to small layers).
    """
    bound = bind_for_verification(dataflow, layer, accelerator)
    dims = list(bound.levels[0].local_sizes.keys())
    region: Region = {
        dim: (0, bound.levels[0].local_sizes[dim]) for dim in dims
    }
    counts: Dict[Coordinate, int] = {}
    budget = [limit]
    _walk(bound.levels, 0, region, bound.row_rep, bound.col_rep, layer, counts, budget)
    return counts


def _walk(
    levels: Tuple[BoundLevel, ...],
    index: int,
    region: Region,
    row_rep: str,
    col_rep: str,
    layer: Layer,
    counts: Dict[Coordinate, int],
    budget: List[int],
) -> None:
    level = levels[index]
    spatial = [d for d in level.directives if d.spatial]
    temporal = [d for d in level.directives if not d.spatial]
    joint_chunks = level.spatial_chunks if spatial else 1

    temporal_ranges = [range(d.chunks) for d in temporal]
    for sub in range(joint_chunks):
        for combo in _odometer(temporal_ranges):
            child: Region = dict(region)
            empty = False
            for directive, j in list(zip(spatial, [sub] * len(spatial))) + list(
                zip(temporal, combo)
            ):
                if j >= directive.chunks:
                    empty = True
                    break
                start, end = child[directive.dim]
                new_start = start + j * directive.offset
                if new_start >= end:
                    empty = True
                    break
                child[directive.dim] = (
                    new_start,
                    min(new_start + directive.size, end),
                )
            if empty:
                continue
            if index + 1 < len(levels):
                _walk(
                    levels, index + 1, child, row_rep, col_rep, layer, counts, budget
                )
            else:
                _emit(child, row_rep, col_rep, layer, counts, budget)


def _odometer(ranges: List[range]) -> List[Tuple[int, ...]]:
    result: List[Tuple[int, ...]] = [()]
    for r in ranges:
        result = [combo + (j,) for combo in result for j in r]
    return result


def _emit(
    region: Region,
    row_rep: str,
    col_rep: str,
    layer: Layer,
    counts: Dict[Coordinate, int],
    budget: List[int],
) -> None:
    row_pairs = _plane_pairs(
        region,
        rep=row_rep,
        in_dim=D.Y,
        out_dim=D.YP,
        k_dim=D.R,
        out_extent=layer.dim_size(D.YP),
        stride=layer.stride[0],
        dilation=layer.dilation[0],
    )
    if not row_pairs:
        return
    col_pairs = _plane_pairs(
        region,
        rep=col_rep,
        in_dim=D.X,
        out_dim=D.XP,
        k_dim=D.S,
        out_extent=layer.dim_size(D.XP),
        stride=layer.stride[1],
        dilation=layer.dilation[1],
    )
    if not col_pairs:
        return
    n_range = range(*region[D.N])
    k_range = range(*region.get(D.K, (0, 1)))
    c_range = range(*region[D.C])
    visits = (
        len(n_range) * len(k_range) * len(c_range) * len(row_pairs) * len(col_pairs)
    )
    budget[0] -= visits
    if budget[0] < 0:
        raise ValueError("brute-force reference exceeded its MAC visit limit")
    for n in n_range:
        for k in k_range:
            for c in c_range:
                for yp, r in row_pairs:
                    for xp, s in col_pairs:
                        key = (n, k, c, yp, r, xp, s)
                        counts[key] = counts.get(key, 0) + 1


def _plane_pairs(
    region: Region,
    rep: str,
    in_dim: str,
    out_dim: str,
    k_dim: str,
    out_extent: int,
    stride: int,
    dilation: int,
) -> List[Tuple[int, int]]:
    """(output, kernel) pairs one step executes on an activation plane."""
    k_start, k_end = region[k_dim]
    if rep == "output":
        out_start, out_end = region[out_dim]
        return [
            (out, k)
            for out in range(out_start, out_end)
            for k in range(k_start, k_end)
        ]
    in_start, in_end = region[in_dim]
    pairs: List[Tuple[int, int]] = []
    for out in range(out_extent):
        window_start = out * stride + k_start * dilation
        window_end = out * stride + (k_end - 1) * dilation
        if window_start >= in_start and window_end <= in_end - 1:
            pairs.extend((out, k) for k in range(k_start, k_end))
    return pairs


def total_cells(layer: Layer) -> int:
    """Size of the full 7-coordinate reference space."""
    sizes = layer.all_dim_sizes()
    return prod(sizes[dim] for dim in REFERENCE_DIMS)
