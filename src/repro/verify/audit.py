"""Audit: which lint rules does the coverage verifier certify as sound?

The DF0xx catalog predates the verifier and is mostly heuristic. This
module classifies every registered rule into:

* ``construction-sound`` — ``construction`` rules: an error raises at
  :class:`~repro.dataflow.dataflow.Dataflow` construction, so the
  verifier never sees such mappings at all.
* ``binding-sound`` — ``binding_equivalent`` rules: an error implies
  :func:`~repro.engines.binding.bind_dataflow` raises for the same
  mapping (certified by construction and the binding-equivalence
  property tests; the verifier reports such mappings as ``INVALID``).
* ``coverage-refutable`` — shape rules whose canonical triggers the
  verifier *refutes with a concrete counterexample* (DF010 overlapping
  chunks, DF017 offset-skips-indices). The audit runs the trigger
  corpus and records the verdicts. These rules stay heuristic in
  general: the same surface pattern at an inner cluster level can be
  clamped into a benign schedule, which the audit also demonstrates —
  that is precisely why they warn instead of erroring, and why DF101
  exists.
* ``verifier`` — the DF101-DF103 codes, which *are* the verifier.
* ``heuristic`` — everything else (utilization, capacity, hardware
  support): not statements about coverage at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    spatial_map,
    temporal_map,
)
from repro.model.layer import Layer, conv2d
from repro.tensors import dims as D
from repro.verify.engine import verify_dataflow
from repro.verify.result import Verdict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.diagnostics import Diagnostic

#: The lint entry point, passed in lazily to avoid an import cycle.
_LintFn = Callable[..., "List[Diagnostic]"]

_VERIFIER_CODES = frozenset({"DF101", "DF102", "DF103"})
_COVERAGE_CODES = frozenset({"DF010", "DF017"})


@dataclass(frozen=True)
class RuleAudit:
    """Classification of one lint rule against the verifier."""

    code: str
    title: str
    category: str
    certified: bool
    evidence: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "title": self.title,
            "category": self.category,
            "certified": self.certified,
            "evidence": list(self.evidence),
        }


def _default_layer() -> Layer:
    return conv2d("audit", n=1, k=8, c=8, y=12, x=12, r=3, s=3)


def _trigger_corpus(code: str) -> List[Tuple[str, Tuple[Directive, ...]]]:
    """Mappings whose top-level shape trips the rule."""
    if code == "DF010":
        return [
            (
                "overlap on K",
                (temporal_map(4, 2, D.K), spatial_map(1, 1, D.C)),
            ),
            (
                "overlap on C",
                (spatial_map(1, 1, D.K), temporal_map(3, 1, D.C)),
            ),
        ]
    if code == "DF017":
        return [
            (
                "gap on K",
                (temporal_map(2, 4, D.K), spatial_map(1, 1, D.C)),
            ),
            (
                "gap on C",
                (spatial_map(1, 1, D.K), temporal_map(1, 2, D.C)),
            ),
        ]
    return []


def _benign_inner_variant() -> Tuple[Directive, ...]:
    """A DF010-shaped directive that the clamp renders exactly-once.

    The inner ``TemporalMap(4,2) K`` looks overlapping, but its level
    only ever sees a 2-wide K tile, so the bound size clamps to 2 and
    the schedule partitions exactly — the verifier proves it.
    """
    return (
        temporal_map(2, 2, D.K),
        spatial_map(1, 1, D.C),
        ClusterDirective(size=8),
        temporal_map(4, 2, D.K),
    )


def audit_rules(layer: Optional[Layer] = None) -> Dict[str, RuleAudit]:
    """Classify every registered lint rule; see the module docstring."""
    from repro.lint.engine import lint_directives
    from repro.lint.rules import RULES

    layer = layer or _default_layer()
    audits: Dict[str, RuleAudit] = {}
    for code, rule in sorted(RULES.items()):
        if code in _VERIFIER_CODES:
            audits[code] = RuleAudit(
                code=code,
                title=rule.title,
                category="verifier",
                certified=True,
                evidence=("emitted directly from repro.verify verdicts",),
            )
            continue
        if getattr(rule, "construction", False):
            audits[code] = RuleAudit(
                code=code,
                title=rule.title,
                category="construction-sound",
                certified=True,
                evidence=(
                    "error raises at Dataflow construction; the verifier "
                    "never sees such mappings",
                ),
            )
            continue
        if rule.binding_equivalent:
            audits[code] = RuleAudit(
                code=code,
                title=rule.title,
                category="binding-sound",
                certified=True,
                evidence=(
                    "error implies bind_dataflow raises (binding-equivalence "
                    "property tests); the verifier reports such mappings INVALID",
                ),
            )
            continue
        if code in _COVERAGE_CODES:
            audits[code] = _audit_coverage_rule(code, rule.title, layer, lint_directives)
            continue
        audits[code] = RuleAudit(
            code=code,
            title=rule.title,
            category="heuristic",
            certified=False,
        )
    return audits


def _audit_coverage_rule(
    code: str, title: str, layer: Layer, lint_directives: _LintFn
) -> RuleAudit:
    evidence: List[str] = []
    certified = True
    for label, directives in _trigger_corpus(code):
        diagnostics = lint_directives(f"audit-{code}", list(directives), layer=layer)
        fired = any(d.code == code for d in diagnostics)
        flow = Dataflow(name=f"audit-{code}", directives=tuple(directives))
        result = verify_dataflow(flow, layer)
        refuted = result.verdict is Verdict.REFUTED
        certified = certified and fired and refuted
        outcome = "refuted" if refuted else result.verdict.value
        detail = (
            f" ({result.counterexample.describe()})"
            if result.counterexample is not None
            else ""
        )
        evidence.append(
            f"{label}: rule {'fires' if fired else 'SILENT'}, "
            f"verifier {outcome}{detail}"
        )
    if code == "DF010":
        benign = Dataflow(name="audit-benign", directives=_benign_inner_variant())
        result = verify_dataflow(benign, layer)
        evidence.append(
            f"inner-level variant: verifier {result.verdict.value} "
            "(surface pattern alone does not imply a defect)"
        )
    return RuleAudit(
        code=code,
        title=title,
        category="coverage-refutable",
        certified=certified,
        evidence=tuple(evidence),
    )
