"""End-to-end network scheduling with inter-layer activation residency.

The per-layer cost model charges every layer a DRAM read of its inputs
and a DRAM write of its outputs. When the shared L2 scratchpad is large
enough to hold a layer's output *alongside* the next layer's working
set, a real accelerator keeps the intermediate activation on chip and
skips that DRAM round trip — often the single largest energy lever at
the network level. This module layers that analysis on top of
:func:`repro.engines.analyze_layer`:

- pick a dataflow per layer (a fixed dataflow, or the best of a
  candidate set per layer, as in the adaptive experiment);
- walk producer->consumer pairs in network order and test whether the
  intermediate tensor fits in L2 next to the consumer's double-buffered
  working set;
- report the adjusted energy and the DRAM traffic saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro import obs
from repro.dataflow.dataflow import Dataflow
from repro.engines.analysis import LayerAnalysis, analyze_layer
from repro.errors import BindingError, DataflowError
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.network import Network

DataflowChoice = Union[Dataflow, Mapping[str, Dataflow]]


@dataclass(frozen=True)
class LayerSchedule:
    """One layer's placement in the network schedule."""

    layer_name: str
    dataflow_name: str
    report: LayerAnalysis
    input_resident: bool
    dram_bytes_saved: float


@dataclass(frozen=True)
class NetworkSchedule:
    """The scheduled network: per-layer choices plus adjusted totals."""

    network_name: str
    layers: Tuple[LayerSchedule, ...]
    energy_model: EnergyModel

    @property
    def runtime(self) -> float:
        return sum(entry.report.runtime for entry in self.layers)

    @property
    def raw_energy(self) -> float:
        """Energy before residency savings (per-layer model sum)."""
        return sum(entry.report.energy_total for entry in self.layers)

    @property
    def dram_energy_saved(self) -> float:
        element_savings = sum(entry.dram_bytes_saved for entry in self.layers)
        return element_savings * self.energy_model.dram

    @property
    def energy_total(self) -> float:
        return self.raw_energy - self.dram_energy_saved

    @property
    def resident_fraction(self) -> float:
        """Fraction of layer inputs kept on chip."""
        if len(self.layers) <= 1:
            return 0.0
        resident = sum(1 for entry in self.layers[1:] if entry.input_resident)
        return resident / (len(self.layers) - 1)


def schedule_network(
    network: Network,
    dataflows: DataflowChoice,
    accelerator: Accelerator,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    metric: str = "runtime",
) -> NetworkSchedule:
    """Schedule ``network`` end to end; see the module docstring.

    ``dataflows`` is either one dataflow for every layer or a candidate
    set, in which case the best per layer under ``metric`` is selected
    (the Figure 10(f) adaptive approach).
    """
    with obs.span("pipeline.select", network=network.name, metric=metric):
        reports = _select_reports(
            network, dataflows, accelerator, energy_model, metric
        )

    with obs.span("pipeline.schedule", network=network.name):
        entries: List[LayerSchedule] = []
        previous_output_elements: Optional[float] = None
        l2_capacity = accelerator.l2_size  # None = unconstrained (fits)
        for index, layer in enumerate(network.layers):
            dataflow_name, report = reports[layer.name]
            input_resident = False
            saved = 0.0
            if index > 0 and previous_output_elements is not None:
                needed = (
                    previous_output_elements * accelerator.element_bytes
                    + report.l2_buffer_req
                )
                if l2_capacity is None or needed <= l2_capacity:
                    input_resident = True
                    # Skip the producer's DRAM write-back and this layer's
                    # DRAM fetch of the same tensor (element counts; the
                    # consumer may read a cropped/pooled subset, so take the
                    # smaller side).
                    consumed = min(
                        previous_output_elements,
                        sum(report.dram_reads.values()),
                    )
                    saved = previous_output_elements + consumed
            entries.append(
                LayerSchedule(
                    layer_name=layer.name,
                    dataflow_name=dataflow_name,
                    report=report,
                    input_resident=input_resident,
                    dram_bytes_saved=saved,
                )
            )
            previous_output_elements = sum(report.dram_writes.values())
    obs.inc("pipeline.layers_scheduled", len(entries))
    return NetworkSchedule(
        network_name=network.name,
        layers=tuple(entries),
        energy_model=energy_model,
    )


def _select_reports(
    network: Network,
    dataflows: DataflowChoice,
    accelerator: Accelerator,
    energy_model: EnergyModel,
    metric: str,
) -> Dict[str, Tuple[str, LayerAnalysis]]:
    if isinstance(dataflows, Dataflow):
        candidates: Mapping[str, Dataflow] = {dataflows.name: dataflows}
    else:
        candidates = dataflows
    from repro.adaptive import METRICS

    try:
        score = METRICS[metric]
    except KeyError:
        raise KeyError(f"unknown metric {metric!r}; available: {sorted(METRICS)}")

    reports: Dict[str, Tuple[str, LayerAnalysis]] = {}
    for layer in network.layers:
        best: Optional[Tuple[str, LayerAnalysis]] = None
        for name, flow in candidates.items():
            try:
                report = analyze_layer(layer, flow, accelerator, energy_model)
            except (BindingError, DataflowError):
                continue
            if best is None or score(report) < score(best[1]):
                best = (name, report)
        if best is None:
            raise DataflowError(f"no dataflow binds to layer {layer.name!r}")
        reports[layer.name] = best
    return reports
