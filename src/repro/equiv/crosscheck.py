"""Differential verification of the equivalence analyzer.

``crosscheck_equiv`` replays every (layer, dataflow) pair through
``analyze_layer`` twice — once as spelled, once canonicalized (and,
when the layer is transpose-symmetric and the integer-activity
certificate holds, once transposed) — and compares the outcomes field
by field with *zero* tolerance, reusing the strict comparator of the
vector engine's crosscheck. Every claim the canonicalizer makes about
the engines ("a one-step iterator is inert", "spatial slots commute")
is thereby re-proven bit-for-bit on the shipped corpus, exactly like
``crosscheck_vector`` re-proves the lowering.

Transposed outcomes are compared with the twin's ``dataflow_name``
restored (the only field the quotient legitimately changes).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.engines.analysis import analyze_layer
from repro.equiv.canonical import canonicalize
from repro.equiv.symmetry import integral_active, layer_symmetries, transpose_dataflow
from repro.errors import BindingError, DataflowError
from repro.exec.serialize import EvalOutcome
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.layer import Layer
from repro.vector.crosscheck import compare_outcomes


@dataclass(frozen=True)
class EquivMismatch:
    """One field where a canonical/transposed twin diverged."""

    layer: str
    dataflow: str
    variant: str  # "canonical" or "transposed"
    path: str
    original: Any
    twin: Any

    def __str__(self) -> str:
        return (
            f"{self.dataflow} on {self.layer} [{self.variant}] {self.path}: "
            f"original={self.original!r} twin={self.twin!r}"
        )


@dataclass(frozen=True)
class EquivCrosscheckReport:
    """Outcome of one differential run over a corpus."""

    pairs_checked: int
    canonical_changed: int
    transposed_checked: int
    mismatches: Tuple[EquivMismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _outcome(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel,
) -> EvalOutcome:
    try:
        report = analyze_layer(layer, dataflow, accelerator, energy_model)
    except (BindingError, DataflowError) as error:
        return EvalOutcome(
            report=None, error_type=type(error).__name__, error_message=str(error)
        )
    return EvalOutcome(report=report)


def _rename(outcome: EvalOutcome, name: str) -> EvalOutcome:
    if outcome.report is None:
        return outcome
    return EvalOutcome(
        report=dataclasses.replace(outcome.report, dataflow_name=name),
        cached=outcome.cached,
    )


def crosscheck_equiv(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    max_mismatches: int = 32,
) -> EquivCrosscheckReport:
    """Differentially verify canonicalization on one (layer, mapping).

    The canonical twin keeps the original's name, so the comparison is
    total — any field difference, including type drift, is a mismatch.
    The transposed twin is only compared when the layer is symmetric
    and :func:`~repro.equiv.symmetry.integral_active` certifies
    bit-exactness at the accelerator's PE count.
    """
    mismatches: List[EquivMismatch] = []

    def record(variant: str, diffs: List[Tuple[str, Any, Any]]) -> None:
        for path, a, b in diffs:
            if len(mismatches) < max_mismatches:
                mismatches.append(
                    EquivMismatch(
                        layer=layer.name,
                        dataflow=dataflow.name,
                        variant=variant,
                        path=path,
                        original=a,
                        twin=b,
                    )
                )

    original = _outcome(layer, dataflow, accelerator, energy_model)
    form = canonicalize(dataflow, layer)

    canonical_changed = 0
    if not form.fallback and form.changed:
        canonical_changed = 1
        try:
            twin_flow = Dataflow(name=dataflow.name, directives=form.directives)
        except DataflowError:  # pragma: no cover - canonicalize pre-validates
            twin_flow = None
        if twin_flow is not None:
            record(
                "canonical",
                compare_outcomes(
                    original, _outcome(layer, twin_flow, accelerator, energy_model)
                ),
            )

    transposed_checked = 0
    if (
        not form.fallback
        and layer_symmetries(layer)
        and integral_active(form, accelerator.num_pes)
    ):
        try:
            twin_flow = transpose_dataflow(dataflow, name=dataflow.name)
        except DataflowError:
            twin_flow = None
        if twin_flow is not None:
            transposed_checked = 1
            twin = _rename(
                _outcome(layer, twin_flow, accelerator, energy_model), dataflow.name
            )
            record("transposed", compare_outcomes(original, twin))

    return EquivCrosscheckReport(
        pairs_checked=1,
        canonical_changed=canonical_changed,
        transposed_checked=transposed_checked,
        mismatches=tuple(mismatches),
    )


def crosscheck_corpus(
    pairs: Sequence[Tuple[Layer, Dataflow]],
    accelerator: Accelerator,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    max_mismatches: int = 32,
) -> EquivCrosscheckReport:
    """Run :func:`crosscheck_equiv` over a corpus and merge the reports."""
    checked = changed = transposed = 0
    mismatches: List[EquivMismatch] = []
    for layer, dataflow in pairs:
        report = crosscheck_equiv(
            layer,
            dataflow,
            accelerator,
            energy_model,
            max_mismatches=max_mismatches - len(mismatches),
        )
        checked += report.pairs_checked
        changed += report.canonical_changed
        transposed += report.transposed_checked
        mismatches.extend(report.mismatches)
    return EquivCrosscheckReport(
        pairs_checked=checked,
        canonical_changed=changed,
        transposed_checked=transposed,
        mismatches=tuple(mismatches),
    )


def library_flows(include_playground: bool = True) -> Dict[str, Dataflow]:
    """The named library dataflows, keyed by catalog name.

    ``include_playground=False`` drops the Fig-5 teaching mappings —
    useful where the catalog serves as a quality reference (DF403)
    rather than a coverage corpus.
    """
    from repro.dataflow.library import (
        fig5_playground,
        output_stationary_1level,
        row_stationary_fig6,
        table3_dataflows,
        weight_stationary_1level,
    )

    flows: Dict[str, Dataflow] = dict(table3_dataflows())
    if include_playground:
        flows.update({f"fig5-{k}": v for k, v in fig5_playground().items()})
    flows["row-stationary-fig6"] = row_stationary_fig6()
    flows["WS-K"] = weight_stationary_1level()
    flows["OS-YX"] = output_stationary_1level()
    return flows


def library_corpus(models: Optional[Sequence[str]] = None) -> List[Tuple[Layer, Dataflow]]:
    """Every zoo layer × library dataflow pair (the acceptance corpus)."""
    from repro.model.zoo import MODELS, build

    flows = library_flows()
    names = list(models) if models is not None else sorted(MODELS)
    pairs: List[Tuple[Layer, Dataflow]] = []
    for model_name in names:
        network = build(model_name)
        for layer in network.layers:
            for flow in flows.values():
                pairs.append((layer, flow))
    return pairs


__all__ = [
    "EquivCrosscheckReport",
    "EquivMismatch",
    "crosscheck_corpus",
    "crosscheck_equiv",
    "library_corpus",
    "library_flows",
]
