"""Mapping equivalence & dominance analysis.

The package quotients the mapping axis: :mod:`~repro.equiv.canonical`
computes an exact canonical form per ``(dataflow, layer)`` (evaluated
sizes, single-chunk temporal elision, spatial slot sorting — each a
theorem about the binding/reuse engines), :mod:`~repro.equiv.symmetry`
detects the layer's row/column transposition symmetry and decides when
quotienting by it is bit-exact, :mod:`~repro.equiv.dominance` issues
static no-worse-than certificates over hardware boxes via the interval
abstract interpreter, and :mod:`~repro.equiv.crosscheck` differentially
re-proves the exactness claims over the shipped corpus. The canonical
key is the exec cache's content address, and DSE/tune use the quotient
for sound ``--equiv-prune`` replay. See ``docs/equivalence-analysis.md``.
"""

from repro.equiv.canonical import (
    EQUIV_PROVENANCE,
    CanonicalForm,
    CanonicalLevel,
    Key,
    canonical_dataflow,
    canonical_key,
    canonicalize,
    key_to_json,
)
from repro.equiv.crosscheck import (
    EquivCrosscheckReport,
    EquivMismatch,
    crosscheck_corpus,
    crosscheck_equiv,
    library_corpus,
    library_flows,
)
from repro.equiv.dominance import (
    DOMINANCE_PROVENANCE,
    OBJECTIVES,
    DominanceCertificate,
    dominance_certificate,
)
from repro.equiv.symmetry import (
    TRANSPOSE,
    TRANSPOSE_DIMS,
    DimSymmetry,
    integral_active,
    layer_symmetries,
    operator_transposable,
    orbit_key,
    transpose_dataflow,
    transpose_key,
)

__all__ = [
    "DOMINANCE_PROVENANCE",
    "CanonicalForm",
    "CanonicalLevel",
    "DimSymmetry",
    "DominanceCertificate",
    "EQUIV_PROVENANCE",
    "EquivCrosscheckReport",
    "EquivMismatch",
    "Key",
    "OBJECTIVES",
    "TRANSPOSE",
    "TRANSPOSE_DIMS",
    "canonical_dataflow",
    "canonical_key",
    "canonicalize",
    "crosscheck_corpus",
    "crosscheck_equiv",
    "dominance_certificate",
    "integral_active",
    "key_to_json",
    "layer_symmetries",
    "library_corpus",
    "library_flows",
    "operator_transposable",
    "orbit_key",
    "transpose_dataflow",
    "transpose_key",
]
