"""Canonical forms for mappings: the exact equivalence tier.

Many directive-list spellings describe the *same* schedule. Three
normalizations are exact with respect to the cluster-analysis and reuse
engines (each is a theorem about :mod:`repro.engines`, empirically
re-proven bit-for-bit by :func:`repro.equiv.crosscheck.crosscheck_equiv`
over the full zoo × library corpus):

1. **Size evaluation + clamping.** Binding evaluates every symbolic
   size/offset against the layer and clamps map sizes to the local
   extent cascading down the cluster hierarchy
   (``size = min(eval(size), local)``). Spelling the evaluated, clamped
   integers directly binds to the identical
   :class:`~repro.engines.binding.BoundDataflow`.

2. **Single-chunk temporal elision.** A ``TemporalMap`` whose clamped
   size covers its whole local extent produces one chunk and one step.
   The binding engine *infers* exactly such a directive for every
   unmapped dimension, and the reuse engine's odometer
   (:func:`repro.engines.reuse.build_odometer` and every consumer of
   its entries) filters on ``steps > 1``, so a one-step iterator is
   inert regardless of its position or offset: the directive can be
   removed. Guard: the last directive naming ``Y'``/``X'`` is kept even
   when single-chunk, because its *presence* selects the output
   coordinate representation
   (:meth:`~repro.dataflow.dataflow.Dataflow.uses_output_coordinates`).

3. **Spatial slot sorting.** All spatial directives of one level
   distribute *jointly*: the odometer collapses them into a single fold
   entry at the first spatial position with their offsets in a dict,
   and every other consumer reads them through dicts
   (``chunk_sizes()``, ``spatial_offsets``). Permuting which spatial
   directive occupies which of the level's spatial slots is therefore
   unobservable; the canonical form sorts them by dimension name.

Anything the walk cannot prove safe — unevaluable expressions,
conditions under which :func:`~repro.engines.binding.bind_dataflow`
would raise, a canonical spelling that fails construction lints — falls
back to the *identity* form, keyed on the raw directive spelling, so
canonicalization never groups mappings it cannot certify.

The canonical :attr:`CanonicalForm.key` is accelerator-independent
(chunk counts never depend on the PE count; only fold counts do, and
folds are not part of the key), which lets DSE group mapping variants
once per layer and reuse the grouping across the whole hardware grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    MapDirective,
    evaluate_size,
)
from repro.errors import DataflowError
from repro.model.layer import Layer
from repro.tensors import dims as D
from repro.util.intmath import num_chunks

#: A hashable, JSON-representable structural key. Canonical keys are
#: ``("canon", <levels...>)`` with one
#: ``(cluster_size_or_-1, ((kind, dim, size, offset), ...))`` tuple per
#: level; fallback keys are ``("raw", (str(directive), ...))``.
Key = Tuple[object, ...]

#: Diagnostic provenance for findings backed by the canonical-form
#: theorems (DF400/DF401/DF402).
EQUIV_PROVENANCE = "exact: canonical-form equivalence (repro.equiv)"


@dataclass(frozen=True)
class CanonicalLevel:
    """One cluster level of a canonical form.

    ``cluster_size`` is the evaluated size of the ``Cluster`` directive
    closing the level (``None`` for the innermost level);
    ``maps`` the kept directives as ``(kind, dim, size, offset)`` with
    kind ``"S"``/``"T"``; ``spatial_chunk_counts`` the chunk counts of
    the spatial directives (the input to the integer-activity
    certificate of :mod:`repro.equiv.symmetry` — accelerator-independent
    because chunk counts never depend on the PE count).
    """

    cluster_size: Optional[int]
    maps: Tuple[Tuple[str, str, int, int], ...]
    spatial_chunk_counts: Tuple[int, ...]

    def key_entry(self) -> Tuple[object, ...]:
        return (self.cluster_size if self.cluster_size is not None else -1, self.maps)


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical form of one ``(dataflow, layer)`` pair."""

    name: str
    directives: Tuple[Directive, ...]
    levels: Tuple[CanonicalLevel, ...]
    elided: Tuple[int, ...]  # original directive indices removed
    #: spatial maps whose slot content changed: (original index, new
    #: ``(kind, dim, size, offset)`` occupying that slot)
    slot_changes: Tuple[Tuple[int, Tuple[str, str, int, int]], ...]
    fallback: bool

    @property
    def reordered(self) -> Tuple[int, ...]:
        """Original indices of spatial maps whose slot content changed."""
        return tuple(index for index, _ in self.slot_changes)

    @property
    def key(self) -> Key:
        """Structural identity: equal keys = provably identical schedules."""
        if self.fallback:
            return ("raw", tuple(str(d) for d in self.directives))
        return ("canon", tuple(level.key_entry() for level in self.levels))

    @property
    def changed(self) -> bool:
        return bool(self.elided) or bool(self.reordered)


def _map_kind(spatial: bool) -> str:
    return "S" if spatial else "T"


def _fallback(dataflow: Dataflow) -> CanonicalForm:
    return CanonicalForm(
        name=dataflow.name,
        directives=tuple(dataflow.directives),
        levels=(),
        elided=(),
        slot_changes=(),
        fallback=True,
    )


def _split_with_indices(
    directives: Tuple[Directive, ...],
) -> List[Tuple[List[Tuple[int, MapDirective]], Optional[Tuple[int, ClusterDirective]]]]:
    """Cluster levels as ``(indexed maps, closing Cluster)`` groups."""
    levels: List[
        Tuple[List[Tuple[int, MapDirective]], Optional[Tuple[int, ClusterDirective]]]
    ] = []
    maps: List[Tuple[int, MapDirective]] = []
    for index, directive in enumerate(directives):
        if isinstance(directive, ClusterDirective):
            levels.append((maps, (index, directive)))
            maps = []
        elif isinstance(directive, MapDirective):
            maps.append((index, directive))
    levels.append((maps, None))
    return levels


def canonicalize(dataflow: Dataflow, layer: Layer) -> CanonicalForm:
    """Compute the canonical form of ``dataflow`` bound to ``layer``.

    Exact: analyzing the canonical form is bit-identical to analyzing
    the original on every accelerator (see the module docstring for the
    argument, :mod:`repro.equiv.crosscheck` for the empirical proof).
    Falls back to the identity form whenever exactness cannot be
    certified.
    """
    try:
        return _canonicalize(dataflow, layer)
    except (DataflowError, ValueError, KeyError, TypeError):
        return _fallback(dataflow)


def _canonicalize(dataflow: Dataflow, layer: Layer) -> CanonicalForm:
    row_rep = "output" if dataflow.uses_output_coordinates("row") else "input"
    col_rep = "output" if dataflow.uses_output_coordinates("col") else "input"
    dims = [D.N, D.K, D.C]
    dims.append(D.YP if row_rep == "output" else D.Y)
    dims.append(D.XP if col_rep == "output" else D.X)
    dims.extend([D.R, D.S])

    full_sizes = layer.all_dim_sizes()
    strides = {D.Y: layer.stride[0], D.X: layer.stride[1]}
    indexed_levels = _split_with_indices(tuple(dataflow.directives))

    # Representation-selecting directives must survive elision: count
    # how many map directives name Y'/X' so the guard can keep the last.
    rep_counts: Dict[str, int] = {D.YP: 0, D.XP: 0}
    for directive in dataflow.directives:
        if isinstance(directive, MapDirective) and directive.dim in rep_counts:
            rep_counts[directive.dim] += 1

    local_sizes: Dict[str, int] = {dim: full_sizes[dim] for dim in dims}
    canonical_levels: List[CanonicalLevel] = []
    out_directives: List[Directive] = []
    elided: List[int] = []
    slot_changes: List[Tuple[int, Tuple[str, str, int, int]]] = []

    for maps, cluster in indexed_levels:
        seen: set = set()
        kept: List[Tuple[int, str, bool, int, int]] = []
        spatial_counts: List[int] = []
        next_local: Dict[str, int] = {}
        for index, directive in maps:
            if directive.dim not in dims or directive.dim in seen:
                return _fallback(dataflow)  # binding raises for this spelling
            seen.add(directive.dim)
            local = local_sizes.get(directive.dim, 1)
            size = min(evaluate_size(directive.size, full_sizes, strides), local)
            offset = evaluate_size(directive.offset, full_sizes, strides)
            if size < 1 or offset < 1:
                return _fallback(dataflow)  # binding raises for this spelling
            next_local[directive.dim] = size
            chunks = num_chunks(local, size, offset)
            if not directive.spatial and chunks == 1:
                if directive.dim in rep_counts and rep_counts[directive.dim] <= 1:
                    # Keep the representation-selecting directive; its
                    # presence (not its values) picks the Y'/X' axes.
                    kept.append((index, directive.dim, False, size, offset))
                    continue
                if directive.dim in rep_counts:
                    rep_counts[directive.dim] -= 1
                elided.append(index)
                continue
            if directive.spatial:
                spatial_counts.append(chunks)
            kept.append((index, directive.dim, directive.spatial, size, offset))

        # Sort the spatial directives into their existing slots by dim.
        spatial_entries = [entry for entry in kept if entry[2]]
        ordered_spatial = sorted(spatial_entries, key=lambda e: (e[1], e[3], e[4]))
        if ordered_spatial != spatial_entries:
            slot_changes.extend(
                (orig[0], (_map_kind(new[2]), new[1], new[3], new[4]))
                for orig, new in zip(spatial_entries, ordered_spatial)
                if orig[1:] != new[1:]
            )
            slot = iter(ordered_spatial)
            kept = [next(slot) if entry[2] else entry for entry in kept]

        cluster_size: Optional[int] = None
        if cluster is not None:
            cluster_size = evaluate_size(cluster[1].size, full_sizes)
            if cluster_size < 1:
                return _fallback(dataflow)  # binding raises for this spelling

        canonical_levels.append(
            CanonicalLevel(
                cluster_size=cluster_size,
                maps=tuple((_map_kind(e[2]), e[1], e[3], e[4]) for e in kept),
                spatial_chunk_counts=tuple(spatial_counts),
            )
        )
        for _, dim, spatial, size, offset in kept:
            out_directives.append(
                MapDirective(dim=dim, size=size, offset=offset, spatial=spatial)
            )
        if cluster_size is not None:
            out_directives.append(ClusterDirective(cluster_size))

        # Mirror BoundLevel.chunk_sizes(): mapped dims carry their
        # clamped size, unmapped (and elided) dims their local extent.
        for dim in dims:
            if dim not in next_local:
                next_local[dim] = local_sizes.get(dim, 1)
        local_sizes = next_local

    form = CanonicalForm(
        name=dataflow.name,
        directives=tuple(out_directives),
        levels=tuple(canonical_levels),
        elided=tuple(elided),
        slot_changes=tuple(slot_changes),
        fallback=False,
    )
    if form.changed:
        # The canonical spelling must itself be constructible (the
        # construction lints run in Dataflow.__post_init__); a spelling
        # they reject cannot serve as a shared representative.
        try:
            Dataflow(name=dataflow.name, directives=form.directives)
        except DataflowError:
            return _fallback(dataflow)
    return form


def canonical_key(dataflow: Dataflow, layer: Layer) -> Key:
    """The canonical structural key of ``dataflow`` on ``layer``."""
    return canonicalize(dataflow, layer).key


def canonical_dataflow(dataflow: Dataflow, layer: Layer, name: Optional[str] = None) -> Dataflow:
    """Realize the canonical form as a ``Dataflow`` (identity on fallback)."""
    form = canonicalize(dataflow, layer)
    if form.fallback or not form.changed:
        if name is None or name == dataflow.name:
            return dataflow
        return Dataflow(name=name, directives=tuple(dataflow.directives))
    return Dataflow(name=name or dataflow.name, directives=form.directives)


def key_to_json(key: Key) -> object:
    """A JSON-stable rendering of a key (tuples become lists)."""

    def convert(value: object) -> object:
        if isinstance(value, tuple):
            return [convert(item) for item in value]
        return value

    return convert(key)


__all__ = [
    "CanonicalForm",
    "CanonicalLevel",
    "Key",
    "canonical_dataflow",
    "canonical_key",
    "canonicalize",
    "key_to_json",
]
