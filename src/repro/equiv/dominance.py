"""Static dominance certificates over declared hardware boxes.

Built on the interval abstract interpreter (:mod:`repro.absint`):
mapping ``A`` statically dominates mapping ``B`` over a hardware box
when ``A``'s *pessimistic* bound beats ``B``'s *optimistic* bound on
every compared objective — i.e. for every concretization of the box on
which both bind, ``A`` is no worse than ``B``, with strict advantage on
at least one objective. Soundness is inherited from the abstract
interpreter's over-approximation (PR 5's monotonicity audit): interval
bounds contain the concrete values, so a worst-vs-best comparison can
never be invalidated by any point of the box.

Dominance is reported only when both analyses are caveat-free: a
caveat marks a subrange where binding partially fails, and there the
interval bounds still cover only the *binding* concretizations — the
two mappings may fail on different subranges, so the pointwise claim
would not follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.absint import HardwareBox, ShapeBox, abstract_analyze
from repro.dataflow.dataflow import Dataflow
from repro.errors import DataflowError
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.layer import Layer

#: Objectives compared, all lower-is-better.
OBJECTIVES: Tuple[str, ...] = ("runtime", "energy_total", "edp")

#: Diagnostic provenance for dominance-backed findings (DF403).
DOMINANCE_PROVENANCE = "interval-certified: absint worst-vs-best bounds"


@dataclass(frozen=True)
class DominanceCertificate:
    """A proof that one mapping is statically no worse than another.

    ``bounds`` holds, per objective, the dominator's worst case and the
    dominated mapping's best case (worst <= best for all, strictly for
    at least one).
    """

    dominator: str
    dominated: str
    bounds: Tuple[Tuple[str, float, float], ...]
    hardware: str

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}: {worst:.4g} <= {best:.4g}" for name, worst, best in self.bounds
        )
        return (
            f"{self.dominator} dominates {self.dominated} over {self.hardware} ({parts})"
        )


def _objective_interval(analysis: object, name: str) -> Tuple[float, float]:
    interval = getattr(analysis, name)
    return float(interval.lo), float(interval.hi)


def dominance_certificate(
    dominator: Dataflow,
    dominated: Dataflow,
    layer: Layer,
    hw: HardwareBox,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> Optional[DominanceCertificate]:
    """Certify ``dominator`` no-worse than ``dominated`` over ``hw``.

    Returns ``None`` when no certificate can be established — either
    mapping fails to analyze, an analysis carries caveats, or some
    objective's worst case exceeds the other's best case.
    """
    box = ShapeBox.from_layer(layer)
    try:
        a = abstract_analyze(box, dominator, hw, energy_model)
        b = abstract_analyze(box, dominated, hw, energy_model)
    except (DataflowError, ValueError):
        return None
    if a.caveats or b.caveats:
        return None

    bounds: List[Tuple[str, float, float]] = []
    strict = False
    for name in OBJECTIVES:
        _, a_worst = _objective_interval(a, name)
        b_best, _ = _objective_interval(b, name)
        if a_worst > b_best:
            return None
        if a_worst < b_best:
            strict = True
        bounds.append((name, a_worst, b_best))
    if not strict:
        return None

    if hw.num_pes.is_point and hw.bandwidth.is_point:
        hardware = f"{hw.num_pes.lo} PEs, bw {hw.bandwidth.lo}"
    else:
        hardware = (
            f"PEs [{hw.num_pes.lo}, {hw.num_pes.hi}], "
            f"bw [{hw.bandwidth.lo}, {hw.bandwidth.hi}]"
        )
    return DominanceCertificate(
        dominator=dominator.name,
        dominated=dominated.name,
        bounds=tuple(bounds),
        hardware=hardware,
    )


__all__ = [
    "DOMINANCE_PROVENANCE",
    "OBJECTIVES",
    "DominanceCertificate",
    "dominance_certificate",
]
