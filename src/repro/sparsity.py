"""Statistical sparsity models (extending the paper's Section 4.4).

The paper models *uniformly distributed* sparsity — a density scalar
per tensor that scales compute and traffic — and leaves "more complex
statistical sparsity distributions" as future work. This module
implements that extension with three models:

- :class:`UniformSparsity` — the paper's baseline: every element is
  non-zero with probability ``density``, independently. Under random
  sparsity PEs receive different amounts of work, so a *load-imbalance*
  factor (expected maximum over mean of per-PE Binomial work, by normal
  approximation) inflates runtime relative to the dense schedule.
- :class:`ChannelPruning` — structured sparsity: a fraction of input
  channels is entirely zero. Perfectly compactable: it shrinks the
  effective channel count with no imbalance.
- :class:`BlockSparsity` — fixed-size all-or-nothing blocks: the
  density acts like uniform sparsity but with ``block`` times fewer
  independent draws, hence worse imbalance.

``sparse_report`` wraps :func:`repro.engines.analyze_layer` and applies
the imbalance factor, reproducing the qualitative behavior SCNN-class
accelerators report: random sparsity buys less speedup than its density
suggests, structured sparsity buys all of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

from repro.dataflow.dataflow import Dataflow
from repro.engines.analysis import LayerAnalysis, analyze_layer
from repro.errors import LayerError
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.layer import Layer
from repro.tensors import dims as D


class SparsityModel:
    """Abstract sparsity model for one tensor."""

    def density(self) -> float:
        raise NotImplementedError

    def independent_draws(self, elements: float) -> float:
        """Number of independent Bernoulli draws behind ``elements``."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformSparsity(SparsityModel):
    """IID Bernoulli sparsity at the given density (the paper's model)."""

    value: float

    def __post_init__(self) -> None:
        if not 0.0 < self.value <= 1.0:
            raise LayerError(f"density must be in (0, 1], got {self.value}")

    def density(self) -> float:
        return self.value

    def independent_draws(self, elements: float) -> float:
        return elements


@dataclass(frozen=True)
class ChannelPruning(SparsityModel):
    """Structured channel sparsity: ``kept`` fraction of channels remain."""

    kept: float

    def __post_init__(self) -> None:
        if not 0.0 < self.kept <= 1.0:
            raise LayerError(f"kept fraction must be in (0, 1], got {self.kept}")

    def density(self) -> float:
        return self.kept

    def independent_draws(self, elements: float) -> float:
        # Structured pruning is compile-time knowledge: no randomness.
        return float("inf")


@dataclass(frozen=True)
class BlockSparsity(SparsityModel):
    """All-or-nothing blocks of ``block`` elements at the given density."""

    value: float
    block: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.value <= 1.0:
            raise LayerError(f"density must be in (0, 1], got {self.value}")
        if self.block < 1:
            raise LayerError(f"block must be >= 1, got {self.block}")

    def density(self) -> float:
        return self.value

    def independent_draws(self, elements: float) -> float:
        return max(1.0, elements / self.block)


def load_imbalance_factor(
    model: SparsityModel, work_per_pe: float, num_pes: int
) -> float:
    """Expected max-over-mean PE work under random sparsity.

    Per PE the non-zero work is ~ Binomial(n, d) with ``n`` independent
    draws; the expected maximum over ``P`` PEs exceeds the mean by about
    ``sqrt(2 ln P)`` standard deviations (Gumbel tail of the normal
    approximation). Structured models have infinite ``n`` and factor 1.
    """
    if num_pes <= 1:
        return 1.0
    density = model.density()
    draws = model.independent_draws(work_per_pe)
    if not math.isfinite(draws) or draws <= 0 or density >= 1.0:
        return 1.0
    mean = draws * density
    if mean <= 0:
        return 1.0
    std = math.sqrt(draws * density * (1.0 - density))
    extreme = math.sqrt(2.0 * math.log(num_pes))
    return 1.0 + extreme * std / mean


def sparse_layer(layer: Layer, models: Mapping[str, SparsityModel]) -> Layer:
    """A copy of ``layer`` with the models' densities applied.

    Channel pruning shrinks the effective ``C`` extent instead of the
    density (structured sparsity is compactable).
    """
    densities: Dict[str, float] = dict(layer.densities)
    dims = dict(layer.dims)
    for tensor_name, model in models.items():
        layer.operator.tensor(tensor_name)  # validate name
        if isinstance(model, ChannelPruning):
            dims[D.C] = max(1, round(dims[D.C] * model.kept))
        else:
            densities[tensor_name] = (
                densities.get(tensor_name, 1.0) * model.density()
            )
    return replace(layer, dims=dims, densities=densities)


@dataclass(frozen=True)
class SparseReport:
    """A dense-schedule analysis corrected for sparsity load imbalance."""

    base: LayerAnalysis
    imbalance: float

    @property
    def runtime(self) -> float:
        return self.base.runtime * self.imbalance

    @property
    def energy_total(self) -> float:
        return self.base.energy_total

    @property
    def speedup_vs_dense(self) -> Optional[float]:
        return None  # computed by callers that hold the dense report


def sparse_report(
    layer: Layer,
    models: Mapping[str, SparsityModel],
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> SparseReport:
    """Analyze ``layer`` under the sparsity models; see module docstring."""
    adjusted = sparse_layer(layer, models)
    report = analyze_layer(adjusted, dataflow, accelerator, energy_model)
    work_per_pe = adjusted.total_ops() / max(1, accelerator.num_pes)
    imbalance = 1.0
    for model in models.values():
        imbalance = max(
            imbalance, load_imbalance_factor(model, work_per_pe, accelerator.num_pes)
        )
    return SparseReport(base=report, imbalance=imbalance)
