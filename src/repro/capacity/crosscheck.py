"""Differential verification of the capacity bounds and roofline floors.

Every claim :mod:`repro.capacity` makes is replayed against two
independent oracles:

1. **The analytical engine** (:mod:`repro.engines.analysis`): the static
   peak bounds must be at least the engine's reported
   ``l1_buffer_req`` / ``l2_buffer_req`` / ``intermediate_buffer_reqs``
   (they are in fact bit-identical — equality is recorded separately),
   and the roofline compute/communication floors must never exceed the
   engine's top-level sweep runtime.

2. **The simulator's occupancy walk** (:mod:`repro.simulator.regions`,
   the PR 4 double-buffer machinery): walking the joint odometer, the
   instantaneous per-PE footprint — scaled by the buffering factor —
   and the sum of any two consecutive footprints must stay within the
   static L1 peak; the array-wide footprint must stay within the
   static L2 peak up to the documented sliding-window halo tolerance.
   The array-wide oracle is the *exact* per-axis union of every active
   sub-unit's shifted footprint (``array_union_box`` itself only
   promises an over-approximating bounding box, proven by the PR 4
   ``_exact_union_volume`` brute force — an allocator convenience, not
   an occupancy). The walk is only run for dense tensors (the interval
   arithmetic counts dense elements; the closed form density-scales).

``crosscheck_capacity`` runs both oracles for one (dataflow, layer,
accelerator) triple; ``repro verify --capacity`` sweeps it over the
mapping catalog, and :func:`capacity_corpus` provides the zoo x library
acceptance corpus. A clean report is the evidence that the bounds are
*certified*, not just plausible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.capacity.bounds import CapacityBounds, compute_capacity_bounds
from repro.capacity.roofline import RooflineCertificate, classify_roofline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataflow.dataflow import Dataflow
    from repro.hardware.accelerator import Accelerator
    from repro.model.layer import Layer

__all__ = [
    "CapacityCrosscheckReport",
    "CapacityMismatch",
    "capacity_corpus",
    "crosscheck_capacity",
]

#: The L2 union footprint may exceed the closed-form unique-volume bound
#: by the sliding-window halo the closed form elides — an engine
#: property, not a static-bound one (the static L2 peak equals the
#: engine's bit-for-bit). Observed at most ~7.5% across the zoo x
#: library corpus (YX-P on depthwise layers, where the Y-halo is large
#: relative to the tiny per-channel working set); the PR 4 Fig-9 suite
#: saw at most ~3%.
HALO_TOLERANCE = 0.08


@dataclass(frozen=True)
class CapacityMismatch:
    """One bound an oracle violated."""

    oracle: str  # "engine" or "simulator"
    quantity: str
    static_value: str
    oracle_value: str

    def describe(self) -> str:
        return (
            f"[{self.oracle}] {self.quantity}: static bound "
            f"{self.static_value}, oracle says {self.oracle_value}"
        )


@dataclass(frozen=True)
class CapacityCrosscheckReport:
    """Outcome of one differential capacity cross-check."""

    dataflow_name: str
    layer_name: str
    bounds: CapacityBounds
    roofline: RooflineCertificate
    engine_exact: bool
    occupancy_states: int
    mismatches: Tuple[CapacityMismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        verdict = "AGREE" if self.ok else "DISAGREE"
        exactness = "bit-identical" if self.engine_exact else "conservative"
        lines = [
            f"{verdict}: {self.dataflow_name} on {self.layer_name} — "
            f"engine bounds {exactness}, {self.occupancy_states} occupancy "
            f"state(s) walked, verdict {self.roofline.verdict}"
        ]
        lines.extend(f"  {mismatch.describe()}" for mismatch in self.mismatches)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dataflow": self.dataflow_name,
            "layer": self.layer_name,
            "ok": self.ok,
            "engine_exact": self.engine_exact,
            "occupancy_states": self.occupancy_states,
            "verdict": self.roofline.verdict,
            "mismatches": [m.describe() for m in self.mismatches],
        }


def _covered_length(
    start: float, stop: float, shifts: List[Tuple[float, int]]
) -> float:
    """Exact 1-D union length of ``[start, stop)`` shifted by every
    active sub-unit combination of the given ``(shift, active)`` levels."""
    import itertools

    if not shifts:
        return stop - start
    intervals = []
    for units in itertools.product(*(range(max(1, active)) for _, active in shifts)):
        offset = sum(unit * shift for unit, (shift, _) in zip(units, shifts))
        intervals.append((start + offset, stop + offset))
    intervals.sort()
    covered = 0.0
    cursor = float("-inf")
    for lo, hi in intervals:
        lo = max(lo, cursor)
        if hi > lo:
            covered += hi - lo
            cursor = hi
    return covered


class _OccupancyWalk:
    """The joint odometer walk of one bound configuration.

    A lightweight port of the PR 4 occupancy suite's walk: per-PE
    footprints from :func:`tensor_box`, array-wide footprints from
    :func:`array_union_box`, states addressed through the mixed-radix
    odometer so edge tiles and offset wraparound are exercised.
    """

    def __init__(
        self, dataflow: "Dataflow", layer: "Layer", accelerator: "Accelerator"
    ) -> None:
        from repro.engines.binding import bind_dataflow
        from repro.engines.reuse import build_odometer
        from repro.engines.tensor_analysis import analyze_tensors

        bound = bind_dataflow(dataflow, layer, accelerator)
        self.tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
        self.inner_sizes = bound.innermost().chunk_sizes()
        self.shift_sets: List[Tuple[Mapping[str, int], int]] = [
            (level.spatial_offsets, int(round(level.avg_active)))
            for level in bound.levels
            if level.width > 1
        ]
        self.entries: List[Tuple[int, Dict[str, int]]] = []
        for level in bound.levels:
            for entry in build_odometer(level):
                if entry.steps > 1:
                    self.entries.append((entry.steps, dict(entry.advancing_offsets)))
        self.total_states = 1
        for steps, _ in self.entries:
            self.total_states *= steps
        self.element_bytes = accelerator.element_bytes

    @property
    def dense(self) -> bool:
        """Whether the box volumes are comparable to the closed form."""
        return all(info.density >= 1.0 for info in self.tensors.tensors)

    def starts_at(self, state: int) -> Dict[str, int]:
        digits = []
        for steps, _ in reversed(self.entries):
            digits.append(state % steps)
            state //= steps
        digits.reverse()
        acc = {dim: 0 for dim in self.inner_sizes}
        for (steps, offsets), digit in zip(self.entries, digits):
            for dim, offset in offsets.items():
                acc[dim] = acc.get(dim, 0) + digit * offset
        return acc

    def sample_states(self, sequential: int, sampled: int, seed: int = 0) -> List[int]:
        states = list(range(min(self.total_states, sequential)))
        if self.total_states > sequential:
            rng = random.Random(seed)
            states += sorted(rng.randrange(self.total_states) for _ in range(sampled))
        return states

    def l1_bytes(self, starts: Mapping[str, int]) -> int:
        from repro.simulator.regions import tensor_box

        return self.element_bytes * sum(
            tensor_box(info.axes, starts, self.inner_sizes).volume()
            for info in self.tensors.tensors
        )

    def l2_bytes(self, starts: Mapping[str, int]) -> float:
        """The array's exact union footprint at ``starts``, in bytes.

        Per tensor and axis, the 1-D union of every active sub-unit
        combination's shifted interval is merged exactly (gaps between
        strided sub-units are *not* counted); per-axis coverages
        multiply. This matches the closed-form unique-volume
        accounting's per-axis factorization while staying a literal
        enumeration of what the array holds.
        """
        from repro.simulator.regions import axis_interval

        total = 0.0
        for info in self.tensors.tensors:
            volume = 1.0
            for axis in info.axes:
                base = axis_interval(axis, starts, self.inner_sizes)
                if base.length <= 0:
                    volume = 0.0
                    break
                shifts = [
                    (float(axis.shift(offsets)), active)
                    for offsets, active in self.shift_sets
                    if abs(axis.shift(offsets)) > 1e-9
                ]
                volume *= _covered_length(base.start, base.stop, shifts)
            total += volume
        return self.element_bytes * total


def _check_engine(
    bounds: CapacityBounds,
    roofline: RooflineCertificate,
    dataflow: "Dataflow",
    layer: "Layer",
    accelerator: "Accelerator",
) -> Tuple[bool, List[CapacityMismatch]]:
    """Oracle 1: the analytical engine's requirements and runtime."""
    from repro.engines.analysis import analyze_layer

    report = analyze_layer(layer, dataflow, accelerator)
    mismatches: List[CapacityMismatch] = []

    claims = [
        ("l1_buffer_req", bounds.l1.peak_bytes, report.l1_buffer_req),
        ("l2_buffer_req", bounds.l2.peak_bytes, report.l2_buffer_req),
    ]
    for depth, requirement in enumerate(report.intermediate_buffer_reqs):
        static = (
            bounds.intermediates[depth].peak_bytes
            if depth < len(bounds.intermediates)
            else -1
        )
        claims.append((f"intermediate_buffer_reqs[{depth}]", static, requirement))

    exact = True
    for quantity, static, engine in claims:
        if static < engine:
            mismatches.append(
                CapacityMismatch(
                    oracle="engine",
                    quantity=quantity,
                    static_value=str(static),
                    oracle_value=str(engine),
                )
            )
        if static != engine:
            exact = False

    sweep_runtime = report.level_stats[0].runtime_sweep
    tolerance = 1e-9 * max(1.0, sweep_runtime)
    for quantity, floor in (
        ("compute_floor_cycles", roofline.compute_floor_cycles),
        ("comm_floor_cycles", roofline.comm_floor_cycles),
    ):
        if floor > sweep_runtime + tolerance:
            mismatches.append(
                CapacityMismatch(
                    oracle="engine",
                    quantity=quantity,
                    static_value=f"{floor:.3f}",
                    oracle_value=f"runtime_sweep {sweep_runtime:.3f}",
                )
            )
    return exact, mismatches


def _check_simulator(
    bounds: CapacityBounds,
    dataflow: "Dataflow",
    layer: "Layer",
    accelerator: "Accelerator",
    sequential: int,
    sampled: int,
) -> Tuple[int, List[CapacityMismatch]]:
    """Oracle 2: the simulator's instantaneous occupancy walk."""
    walk = _OccupancyWalk(dataflow, layer, accelerator)
    if not walk.dense:
        return 0, []
    buffering = bounds.buffering
    l2_margin = bounds.l2.peak_bytes * (1 + HALO_TOLERANCE)
    # Exact-union enumeration is exponential in concurrent spatial
    # levels; cap the combination count (never reached by the corpus).
    combos = 1
    for _, active in walk.shift_sets:
        combos *= max(1, active)
    check_l2 = combos <= 4096
    mismatches: List[CapacityMismatch] = []
    states = walk.sample_states(sequential, sampled)
    prev_l1: Optional[int] = None
    for state in states:
        starts = walk.starts_at(state)
        l1_now = walk.l1_bytes(starts)
        if buffering * l1_now > bounds.l1.peak_bytes:
            mismatches.append(
                CapacityMismatch(
                    oracle="simulator",
                    quantity=f"L1 occupancy at state {state}",
                    static_value=str(bounds.l1.peak_bytes),
                    oracle_value=f"{buffering} * {l1_now}",
                )
            )
        if prev_l1 is not None and l1_now + prev_l1 > bounds.l1.peak_bytes:
            mismatches.append(
                CapacityMismatch(
                    oracle="simulator",
                    quantity=f"L1 double-buffer slots at state {state}",
                    static_value=str(bounds.l1.peak_bytes),
                    oracle_value=f"{prev_l1} + {l1_now}",
                )
            )
        if check_l2:
            l2_now = walk.l2_bytes(starts)
            if buffering * l2_now > l2_margin:
                mismatches.append(
                    CapacityMismatch(
                        oracle="simulator",
                        quantity=f"L2 occupancy at state {state} (halo-tolerant)",
                        static_value=str(bounds.l2.peak_bytes),
                        oracle_value=f"{buffering} * {l2_now:.0f}",
                    )
                )
        prev_l1 = l1_now
    return len(states), mismatches


def crosscheck_capacity(
    dataflow: "Dataflow",
    layer: "Layer",
    accelerator: "Optional[Accelerator]" = None,
    occupancy_sequential: int = 32,
    occupancy_sampled: int = 16,
) -> CapacityCrosscheckReport:
    """Replay one triple's bounds and floors against both oracles."""
    from repro.hardware.accelerator import Accelerator

    if accelerator is None:
        accelerator = Accelerator(num_pes=64)
    bounds = compute_capacity_bounds(dataflow, layer, accelerator)
    roofline = classify_roofline(dataflow, layer, accelerator)

    engine_exact, mismatches = _check_engine(
        bounds, roofline, dataflow, layer, accelerator
    )
    states, sim_mismatches = _check_simulator(
        bounds, dataflow, layer, accelerator, occupancy_sequential, occupancy_sampled
    )
    mismatches.extend(sim_mismatches)

    obs.inc("capacity.crosschecks_run")
    if mismatches:
        obs.inc("capacity.crosscheck_mismatches", len(mismatches))
    return CapacityCrosscheckReport(
        dataflow_name=dataflow.name,
        layer_name=layer.name,
        bounds=bounds,
        roofline=roofline,
        engine_exact=engine_exact,
        occupancy_states=states,
        mismatches=tuple(mismatches),
    )


def capacity_corpus(
    models: Optional[List[str]] = None,
) -> List[Tuple["Layer", "Dataflow"]]:
    """The zoo x library acceptance corpus (shared with repro.equiv)."""
    from repro.equiv.crosscheck import library_corpus

    return library_corpus(models=models)
