"""Sound capacity pruning helpers for the DSE explorer and tuner.

The explorer's ``fold_point`` provisions each surviving design's buffers
from the engine-reported requirement (``l1 = max(l1_buffer_req, 1)``,
``l2 = max(l2_buffer_req, 1)``) and rejects the point when the sized
accelerator busts the area/power budget — *after* paying a full
cost-model call. Because :func:`compute_capacity_bounds` reproduces
those requirements bit-for-bit from the binding alone, the same
rejection can be decided *before* evaluation: that is the
``--capacity-prune`` screen.

Soundness of the sub-region discards rests on two monotonicity facts:

- the sized design's area/power is monotone in NoC bandwidth (the
  :class:`~repro.hardware.area.AreaModel` bus/arbiter terms have
  positive coefficients), so a reject at the smallest bandwidth rejects
  the whole bandwidth row;
- L1 occupancy is independent of the PE count and L2 occupancy is
  non-decreasing in it (``avg_active = min(width, chunks/folds)`` only
  grows with the array), while area/power are monotone in PE count —
  so a reject at the smallest bandwidth also rejects every larger
  array for the same mapping variant.

Variants whose bounds cannot be certified (binding failure) are never
pruned; they flow to the cost model exactly as without the screen.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.capacity.bounds import compute_capacity_bounds
from repro.dataflow.dataflow import Dataflow
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer


def capacity_requirements(
    dataflow: Dataflow, layer: Layer, accelerator: Accelerator
) -> Optional[Tuple[int, int]]:
    """The ``(l1_size, l2_size)`` the DSE would provision, or ``None``.

    Returns exactly what ``fold_point`` computes from the engine report
    (``max(req, 1)`` each), or ``None`` when the mapping cannot be
    certified — callers must not prune in that case.
    """
    try:
        bounds = compute_capacity_bounds(dataflow, layer, accelerator)
    except Exception:
        return None
    return max(bounds.l1.peak_bytes, 1), max(bounds.l2.peak_bytes, 1)
