"""Static buffer-capacity and roofline feasibility analysis.

``repro.capacity`` derives **certified** per-level occupancy bounds —
steady-state and peak under double buffering — and a roofline
classification certificate (compute-bound vs. NoC-bandwidth-bound vs.
capacity-infeasible, with the closed-form crossover bandwidth) for any
(dataflow, layer, accelerator) triple, from the mapping's tile chunks
alone: no cost-model call, no simulation.

The bounds reproduce the analytical engine's Figure-8 buffer sizing
formulas bit-for-bit on the same bound mapping, so "static bound >=
engine requirement" holds with equality by construction; the roofline
floors are provable lower bounds of the engine's performance recursion.
Both facts are continuously re-checked by :func:`crosscheck_capacity`
(``repro verify --capacity``) against the analytical engine and the
simulator's double-buffer occupancy walk.

Consumers:

- DF500-DF504 lints (:mod:`repro.lint.rules`) with fix-its;
- ``repro analyze --capacity`` / ``repro lint --capacity`` views;
- sound ``--capacity-prune`` for ``dse``/``tune``/``serve``
  (:mod:`repro.capacity.prune`), bit-identical optima guaranteed.
"""

from repro.capacity.bounds import (
    CAPACITY_PROVENANCE,
    CapacityBounds,
    LevelOccupancy,
    compute_capacity_bounds,
)
from repro.capacity.crosscheck import (
    CapacityCrosscheckReport,
    CapacityMismatch,
    capacity_corpus,
    crosscheck_capacity,
)
from repro.capacity.prune import capacity_requirements
from repro.capacity.report import (
    capacity_rows,
    render_capacity_summary,
    render_capacity_table,
)
from repro.capacity.roofline import (
    RooflineCertificate,
    classify_roofline,
)

__all__ = [
    "CAPACITY_PROVENANCE",
    "CapacityBounds",
    "CapacityCrosscheckReport",
    "CapacityMismatch",
    "LevelOccupancy",
    "RooflineCertificate",
    "capacity_corpus",
    "capacity_requirements",
    "capacity_rows",
    "classify_roofline",
    "compute_capacity_bounds",
    "crosscheck_capacity",
    "render_capacity_summary",
    "render_capacity_table",
]
