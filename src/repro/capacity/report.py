"""Human-readable rendering of capacity bounds and roofline verdicts.

The ``analyze --capacity`` and ``lint --capacity`` CLI views share this
table: one row per buffer level showing the steady and peak occupancy
bounds, the declared capacity (when any), and the fit/utilization
verdict. JSON output goes through ``CapacityBounds.to_dict`` /
``RooflineCertificate.to_dict`` directly; this module only owns the
text view.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.capacity.bounds import CapacityBounds, LevelOccupancy
from repro.capacity.roofline import RooflineCertificate
from repro.util.text_table import format_table

__all__ = [
    "capacity_rows",
    "render_capacity_summary",
    "render_capacity_table",
]

_HEADERS = (
    "buffer",
    "steady B",
    "peak B",
    "capacity B",
    "fits",
    "util",
)


def _row(level: LevelOccupancy) -> Sequence[object]:
    capacity = "-" if level.capacity_bytes is None else f"{level.capacity_bytes:,}"
    utilization = level.utilization
    util = "-" if utilization is None else f"{utilization:.0%}"
    fits = "yes" if level.fits else ("steady" if level.steady_fits else "NO")
    return (
        level.label,
        f"{level.steady_bytes:,}",
        f"{level.peak_bytes:,}",
        capacity,
        fits,
        util,
    )


def capacity_rows(bounds: CapacityBounds) -> List[Sequence[object]]:
    """Table rows for every bounded buffer level, innermost first."""
    return [_row(level) for level in bounds.levels()]


def render_capacity_table(
    bounds: CapacityBounds, roofline: Optional[RooflineCertificate] = None
) -> str:
    """The per-level occupancy table, plus the roofline verdict line."""
    title = (
        f"capacity: {bounds.dataflow_name} on {bounds.layer_name} "
        f"({bounds.num_pes} PEs, "
        f"{'double' if bounds.double_buffered else 'single'}-buffered)"
    )
    table = format_table(_HEADERS, capacity_rows(bounds), title=title)
    if roofline is None:
        return table
    return f"{table}\n{render_capacity_summary(roofline)}"


def render_capacity_summary(roofline: RooflineCertificate) -> str:
    """One-line verdict: bottleneck, floors, and crossover bandwidth."""
    return (
        f"roofline: {roofline.verdict} "
        f"(compute floor {roofline.compute_floor_cycles:,.0f} cyc, "
        f"comm floor {roofline.comm_floor_cycles:,.0f} cyc at "
        f"bw={roofline.noc_bandwidth}; break-even bw="
        f"{roofline.crossover_bandwidth} elem/cyc)"
    )
