"""Roofline classification certificates from closed-form floors.

The engine's Figure-8 recursion makes every step of a level cost at
least ``max(ingress_delay, egress_delay, t_inner)`` cycles under double
buffering (and their *sum* without it), where ``t_inner`` is the full
sweep runtime of the level below. Two sound lower bounds on the
top-level sweep runtime follow directly:

- **compute floor** — one sweep walks every odometer state of every
  level, and each innermost state costs at least the MAC delay:
  ``compute_delay * prod(odometer_states(level))``;
- **communication floor** — each top-level step's delay is at least its
  ingress (+ partial-sum readback) NoC delay, and
  ``sum(ceil(v_i / bw)) >= total_volume / bw``, so the whole-sweep
  ingress volume over the NoC bandwidth bounds the sweep from below.

Whichever floor is higher names the certified bottleneck, and equating
the two yields the closed-form **crossover bandwidth** — the smallest
NoC width at which communication can hide under compute. When a
declared buffer capacity cannot admit the peak occupancy bound the
verdict is ``capacity-infeasible`` regardless of the floors.

Both floors are provable lower bounds of
``LayerAnalysis.level_stats[0].runtime_sweep``; the crosscheck
(``repro verify --capacity``) enforces exactly that against the real
engine on every corpus pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.capacity.bounds import CapacityBounds, _bind, _bounds_from
from repro.engines.binding import BoundLevel
from repro.engines.reuse import TensorTraffic, analyze_level_reuse, build_odometer
from repro.dataflow.dataflow import Dataflow
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer

#: Verdict labels.
COMPUTE_BOUND = "compute-bound"
BANDWIDTH_BOUND = "bandwidth-bound"
CAPACITY_INFEASIBLE = "capacity-infeasible"


@dataclass(frozen=True)
class RooflineCertificate:
    """Certified bottleneck classification for one triple.

    ``compute_floor_cycles`` and ``comm_floor_cycles`` lower-bound one
    top-level sweep (``runtime / layer.groups`` in engine terms);
    ``crossover_bandwidth`` is the smallest integer NoC bandwidth
    (elements/cycle) whose communication floor no longer exceeds the
    compute floor.
    """

    dataflow_name: str
    layer_name: str
    num_pes: int
    noc_bandwidth: int
    verdict: str
    compute_floor_cycles: float
    comm_floor_cycles: float
    ingress_elems: float
    crossover_bandwidth: int
    bounds: CapacityBounds

    @property
    def bandwidth_bound(self) -> bool:
        return self.verdict == BANDWIDTH_BOUND

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dataflow": self.dataflow_name,
            "layer": self.layer_name,
            "num_pes": self.num_pes,
            "noc_bandwidth": self.noc_bandwidth,
            "verdict": self.verdict,
            "compute_floor_cycles": self.compute_floor_cycles,
            "comm_floor_cycles": self.comm_floor_cycles,
            "ingress_elems": self.ingress_elems,
            "crossover_bandwidth": self.crossover_bandwidth,
            "bounds": self.bounds.to_dict(),
        }


def _odometer_states(level: BoundLevel) -> int:
    """Temporal states of one sweep (temporal steps x spatial folds)."""
    states = 1
    for entry in build_odometer(level):
        states *= entry.steps
    return states


def _ingress_elems(
    traffic: Mapping[str, TensorTraffic], out_name: str, multicast: bool
) -> float:
    """Engine ``ingress_volume``: non-output traffic, multicast-aware."""
    total = 0.0
    for name, tensor_traffic in traffic.items():
        if name == out_name:
            continue
        total += tensor_traffic.unique if multicast else tensor_traffic.delivered
    return total


def classify_roofline(
    dataflow: Dataflow, layer: Layer, accelerator: Accelerator
) -> RooflineCertificate:
    """Classify one triple as compute/bandwidth-bound or infeasible.

    Raises whatever :func:`bind_dataflow` raises when the mapping cannot
    bind (no certificate exists for an unbindable mapping).
    """
    bound, tensors = _bind(dataflow, layer, accelerator)
    bounds = _bounds_from(bound, tensors, accelerator, dataflow.name, layer.name)

    # Compute floor: MAC delay per innermost state, odometer states per
    # level, multiplied out across the hierarchy.
    input_density = 1.0
    for info in tensors.inputs:
        input_density *= info.density
    ops_per_step = tensors.ops_per_chunk(bound.innermost().chunk_sizes()) * (
        input_density
    )
    compute_delay = max(1.0, ops_per_step / accelerator.vector_width)
    compute_floor = compute_delay
    for level in bound.levels:
        compute_floor *= _odometer_states(level)

    # Communication floor: total top-level ingress (+ readback) volume
    # per sweep, mirroring the engine's per-step accounting exactly.
    top_reuse = analyze_level_reuse(bound.levels[0], tensors)
    multicast = accelerator.noc.multicast
    out_name = top_reuse.output_name
    volume = _ingress_elems(top_reuse.init.traffic, out_name, multicast)
    readback_total = top_reuse.psum_readback_per_sweep
    spill = top_reuse.output_spatially_reduced and not accelerator.spatial_reduction
    for cls in top_reuse.classes:
        volume += cls.count * _ingress_elems(cls.traffic, out_name, multicast)
        if cls.outputs_advance and readback_total > 0:
            out_traffic = cls.traffic[out_name]
            volume += cls.count * (
                out_traffic.delivered if spill else out_traffic.unique
            )
    bandwidth = accelerator.noc.bandwidth
    comm_floor = volume / bandwidth if bandwidth > 0 else float("inf")

    crossover = max(1, int(math.ceil(volume / compute_floor)))

    if not bounds.feasible:
        verdict = CAPACITY_INFEASIBLE
    elif comm_floor > compute_floor:
        verdict = BANDWIDTH_BOUND
    else:
        verdict = COMPUTE_BOUND

    return RooflineCertificate(
        dataflow_name=dataflow.name,
        layer_name=layer.name,
        num_pes=accelerator.num_pes,
        noc_bandwidth=bandwidth,
        verdict=verdict,
        compute_floor_cycles=compute_floor,
        comm_floor_cycles=comm_floor,
        ingress_elems=volume,
        crossover_bandwidth=crossover,
        bounds=bounds,
    )
