"""Certified per-level occupancy bounds from the bound mapping alone.

The analytical engine (:mod:`repro.engines.analysis`) sizes buffers with
Figure 8's ``2 * max(working set)`` rule *after* running the full
performance recursion. This module reproduces the exact same sizing
formulas on the exact same :func:`bind_dataflow` output — binding plus
one top-level reuse pass, no cost-model call — so the static peak bounds
equal ``LayerAnalysis.l1_buffer_req`` / ``l2_buffer_req`` /
``intermediate_buffer_reqs`` bit-for-bit. Soundness ("static >= engine
and >= any instantaneous simulator occupancy") therefore holds with
equality against the engine, and with the engine's own double-buffer
margin against the simulator walk (see
:mod:`repro.capacity.crosscheck`).

Monotonicity: every bound is a sum of products of per-dimension clamped
tile extents (times density), so enlarging any directive size — holding
the layer fixed — never shrinks a bound. The DSE/tuner capacity screens
(:mod:`repro.capacity.prune`) rely on this to discard whole grid
sub-regions soundly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.engines.binding import BoundDataflow, bind_dataflow
from repro.engines.reuse import analyze_level_reuse
from repro.engines.tensor_analysis import TensorAnalysis, analyze_tensors
from repro.dataflow.dataflow import Dataflow
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer

#: Provenance string attached to every DF5xx diagnostic: these bounds
#: are closed-form consequences of the clamped-tile binding, not
#: heuristics.
CAPACITY_PROVENANCE = "certified: closed-form occupancy bound (Fig. 8 sizing rule)"

#: Below this peak-to-capacity ratio DF503 flags the buffer as
#: over-provisioned.
UTILIZATION_FLOOR = 0.25


@dataclass(frozen=True)
class LevelOccupancy:
    """Occupancy bound for one buffer level.

    ``steady_bytes`` is the single-buffered working set (one live tile
    set); ``peak_bytes`` scales it by the buffering factor (2 under
    double buffering) and is the capacity the level must provision.
    ``capacity_bytes`` is the declared capacity, ``None`` when the
    accelerator sizes the buffer from the requirement.
    """

    label: str
    steady_bytes: int
    peak_bytes: int
    capacity_bytes: Optional[int]

    @property
    def fits(self) -> bool:
        """Whether the peak bound fits the declared capacity (or is unsized)."""
        return self.capacity_bytes is None or self.peak_bytes <= self.capacity_bytes

    @property
    def steady_fits(self) -> bool:
        """Whether even a single buffer slot fits the declared capacity."""
        return self.capacity_bytes is None or self.steady_bytes <= self.capacity_bytes

    @property
    def utilization(self) -> Optional[float]:
        """Peak occupancy as a fraction of the declared capacity."""
        if self.capacity_bytes is None or self.capacity_bytes <= 0:
            return None
        return self.peak_bytes / self.capacity_bytes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "steady_bytes": self.steady_bytes,
            "peak_bytes": self.peak_bytes,
            "capacity_bytes": self.capacity_bytes,
            "fits": self.fits,
            "utilization": self.utilization,
        }


@dataclass(frozen=True)
class CapacityBounds:
    """Certified occupancy bounds for one (dataflow, layer, accelerator)."""

    dataflow_name: str
    layer_name: str
    num_pes: int
    element_bytes: int
    double_buffered: bool
    l1: LevelOccupancy
    l2: LevelOccupancy
    #: Cluster-boundary buffers of multi-level mappings: entry ``d``
    #: holds the level-``d`` chunk staged per depth-``d+1`` sub-cluster
    #: (mirrors ``LayerAnalysis.intermediate_buffer_reqs``).
    intermediates: Tuple[LevelOccupancy, ...]

    @property
    def buffering(self) -> int:
        return 2 if self.double_buffered else 1

    @property
    def feasible(self) -> bool:
        """Whether every declared capacity admits its peak bound."""
        return (
            self.l1.fits
            and self.l2.fits
            and all(level.fits for level in self.intermediates)
        )

    def levels(self) -> Tuple[LevelOccupancy, ...]:
        """All bounded levels, innermost (L1) first."""
        return (self.l1, *reversed(self.intermediates), self.l2)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dataflow": self.dataflow_name,
            "layer": self.layer_name,
            "num_pes": self.num_pes,
            "element_bytes": self.element_bytes,
            "double_buffered": self.double_buffered,
            "feasible": self.feasible,
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "intermediates": [level.to_dict() for level in self.intermediates],
        }


def _bind(
    dataflow: Dataflow, layer: Layer, accelerator: Accelerator
) -> Tuple[BoundDataflow, TensorAnalysis]:
    bound = bind_dataflow(dataflow, layer, accelerator)
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    return bound, tensors


def _bounds_from(
    bound: BoundDataflow,
    tensors: TensorAnalysis,
    accelerator: Accelerator,
    dataflow_name: str,
    layer_name: str,
) -> CapacityBounds:
    """The Figure-8 sizing formulas, verbatim from the engine."""
    element_bytes = accelerator.element_bytes
    buffering = 2 if accelerator.double_buffered else 1
    innermost = bound.innermost()

    # L1 (per PE): every tensor's clamped innermost chunk.
    l1_elems = sum(info.volume(innermost.chunk_sizes()) for info in tensors.tensors)
    l1 = LevelOccupancy(
        label="L1 (per PE)",
        steady_bytes=int(l1_elems * element_bytes),
        peak_bytes=int(buffering * l1_elems * element_bytes),
        capacity_bytes=accelerator.l1_size,
    )

    # L2 (shared): the array-wide unique top-level chunk, dense-indexed
    # (divided by density, exactly as the engine stores sparse tensors).
    top_reuse = analyze_level_reuse(bound.levels[0], tensors)
    l2_elems = int(
        sum(
            top_reuse.unique_chunk_volumes[info.name] / max(info.density, 1e-12)
            for info in tensors.tensors
        )
    )
    l2 = LevelOccupancy(
        label="L2 (shared)",
        steady_bytes=int(l2_elems * element_bytes),
        peak_bytes=int(buffering * l2_elems * element_bytes),
        capacity_bytes=accelerator.l2_size,
    )

    # Cluster-boundary buffers: the level-d chunk per depth-(d+1) sub-cluster.
    total_levels = len(bound.levels)
    intermediates = []
    for level in bound.levels[:-1]:
        elems = sum(info.volume(level.chunk_sizes()) for info in tensors.tensors)
        intermediates.append(
            LevelOccupancy(
                label=(
                    f"cluster level {level.index}/{total_levels - 1} chunk "
                    f"(per depth-{level.index + 1} sub-cluster)"
                ),
                steady_bytes=int(elems * element_bytes),
                peak_bytes=int(buffering * elems * element_bytes),
                capacity_bytes=None,
            )
        )

    return CapacityBounds(
        dataflow_name=dataflow_name,
        layer_name=layer_name,
        num_pes=accelerator.num_pes,
        element_bytes=element_bytes,
        double_buffered=accelerator.double_buffered,
        l1=l1,
        l2=l2,
        intermediates=tuple(intermediates),
    )


def compute_capacity_bounds(
    dataflow: Dataflow, layer: Layer, accelerator: Accelerator
) -> CapacityBounds:
    """Certified occupancy bounds for one (dataflow, layer, accelerator).

    Peak bounds equal the engine's ``l1_buffer_req`` /
    ``l2_buffer_req`` / ``intermediate_buffer_reqs`` bit-for-bit (same
    binding, same formulas) at a fraction of the cost: binding, tensor
    analysis, and one top-level reuse pass — no performance recursion.

    Raises whatever :func:`bind_dataflow` raises when the mapping cannot
    bind; callers that prune must treat that as "uncertified, do not
    prune".
    """
    bound, tensors = _bind(dataflow, layer, accelerator)
    return _bounds_from(bound, tensors, accelerator, dataflow.name, layer.name)
