"""Vectorized whole-grid cost engine.

Evaluates an entire hardware grid (``num_pes`` x NoC bandwidth) for one
(layer, dataflow) pair in a handful of NumPy array operations instead
of one Python pipeline run per point, with bit-identical results. See
``docs/vectorized-engine.md`` for the lowering rules, the fallback
semantics, and the tolerance policy.

Public API:

- :func:`lower_group` / :class:`LoweredGroup` — partial evaluation of
  the cost model against a grid template (everything but the two grid
  axes folded to constants).
- :func:`evaluate_grid` — run one lowered group over concrete grid
  points, returning per-point :class:`~repro.exec.serialize.EvalOutcome`.
- :func:`crosscheck_vector` — differential parity verifier against the
  scalar ``analyze_layer``.
- :class:`VectorLoweringError` — raised for groups outside the
  expressible space; the batch backend then falls back to the scalar
  engines point by point.
"""

from repro.vector.crosscheck import (
    CrosscheckReport,
    Mismatch,
    compare_outcomes,
    crosscheck_vector,
)
from repro.vector.engine import evaluate_grid
from repro.vector.lower import (
    LoweredGroup,
    VectorLoweringError,
    accelerator_template,
    group_key,
    lower_group,
)

__all__ = [
    "CrosscheckReport",
    "Mismatch",
    "LoweredGroup",
    "VectorLoweringError",
    "accelerator_template",
    "compare_outcomes",
    "crosscheck_vector",
    "evaluate_grid",
    "group_key",
    "lower_group",
]
