"""Structure-of-arrays evaluation of a lowered grid group.

Given a :class:`~repro.vector.lower.LoweredGroup` and the two grid axes
(``num_pes`` and NoC bandwidth as integer arrays), this module runs the
whole reuse/performance/accounting pipeline with NumPy arrays in place
of per-point scalars and materializes one
:class:`~repro.engines.analysis.LayerAnalysis` per grid point.

Parity contract — the reason this file looks the way it does: every
array expression replicates the *exact* scalar arithmetic of
``repro.engines`` (same operations, same order, same accumulation
starts), because IEEE-754 float64 ops are identical between CPython and
NumPy. Per-point conditionals become ``np.where`` over both branches;
structural branches (which transition classes exist, which axes move)
are provably grid-independent, so the class structure is computed once.
The only per-point structural case — a spatial fold collapsing to one
step (``folds == 1``) — keeps its transition class with ``count == 0``,
which is inert in every downstream sum. The crosscheck suite asserts
bit-identical agreement, not just tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engines.analysis import LayerAnalysis, LevelStats
from repro.engines.reuse import LevelReuse
from repro.engines.tensor_analysis import TensorInfo
from repro.exec.serialize import EvalOutcome
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.layer import Layer
from repro.dataflow.dataflow import Dataflow
from repro.vector.lower import (
    AxisTable,
    LoweredGroup,
    VectorLoweringError,
    accelerator_template,
    axis_shift,
    lower_group,
)

#: A grid-varying number: a Python scalar (grid-constant) or an ndarray
#: with one element per feasible grid point. ``Any`` is deliberate — the
#: whole point of the helpers below is that both spellings flow through
#: the same arithmetic.
Value = Any


# ----------------------------------------------------------------------
# Scalar-or-array helpers. Each replicates the exact scalar operation.
# ----------------------------------------------------------------------
def _is_arr(value: Value) -> bool:
    return isinstance(value, np.ndarray)


def _where(cond: Value, true_value: Value, false_value: Value) -> Value:
    if _is_arr(cond):
        return np.where(cond, true_value, false_value)
    return true_value if cond else false_value


def _and(a: Value, b: Value) -> Value:
    if _is_arr(a) or _is_arr(b):
        return np.logical_and(a, b)
    return bool(a and b)


def _or(a: Value, b: Value) -> Value:
    if _is_arr(a) or _is_arr(b):
        return np.logical_or(a, b)
    return bool(a or b)


def _not(a: Value) -> Value:
    if _is_arr(a):
        return np.logical_not(a)
    return not a


def _minimum(a: Value, b: Value) -> Value:
    if _is_arr(a) or _is_arr(b):
        return np.minimum(a, b)
    return min(a, b)


def _maximum(a: Value, b: Value) -> Value:
    if _is_arr(a) or _is_arr(b):
        return np.maximum(a, b)
    return max(a, b)


def _as_float(value: Value) -> Value:
    if _is_arr(value):
        return value.astype(np.float64)
    return float(value)


def _ceil_int(value: Value) -> Value:
    """``int(math.ceil(x))`` for scalars or arrays (values are >= 0)."""
    if _is_arr(value):
        return np.ceil(value).astype(np.int64)
    return int(math.ceil(value))


def _trunc_int(value: Value) -> Value:
    """``int(x)`` truncation for non-negative scalars or arrays."""
    if _is_arr(value):
        return value.astype(np.int64)
    return int(value)


def _ceil_div(a: Value, b: Value) -> Value:
    """``ceil_div`` from :mod:`repro.util.intmath` for Values (b > 0)."""
    return -(-a // b)


def _vsum(values: Sequence[Value]) -> Value:
    """``sum(values)``: same zero start, same accumulation order."""
    acc: Value = 0
    for value in values:
        acc = acc + value
    return acc


def _noc_delay(volume: Value, bandwidth: Value, latency: int) -> Value:
    """:meth:`NoC.delay` over integer Values."""
    if _is_arr(volume) or _is_arr(bandwidth):
        delay = _ceil_div(volume, bandwidth) + latency
        return np.where(volume <= 0, 0, delay)
    if volume <= 0:
        return 0
    return _ceil_div(volume, bandwidth) + latency


# ----------------------------------------------------------------------
# Grid-valued mirrors of the reuse structures.
# ----------------------------------------------------------------------
@dataclass
class _VTraffic:
    fetch: Value
    unique: Value
    delivered: Value
    stationary: Value  # bool Value


@dataclass
class _VClass:
    count: Value
    traffic: Dict[str, _VTraffic]
    outputs_advance: Value  # bool Value


@dataclass
class _VReuse:
    """Grid-valued ``LevelReuse`` (or a wrapped constant one)."""

    index: int
    sweep_steps: Value
    avg_active: Value
    init: _VClass
    classes: List[_VClass]
    output_name: str
    unique_chunk_volumes: Dict[str, Value]
    outputs_per_sweep: float
    psum_factor: Value
    output_spatially_reduced: Value  # bool Value

    @property
    def egress_per_sweep(self) -> Value:
        return self.outputs_per_sweep * self.psum_factor

    @property
    def psum_readback_per_sweep(self) -> Value:
        return self.outputs_per_sweep * (self.psum_factor - 1)


@dataclass
class _VEntry:
    """Odometer entry whose step count / offsets may be grid-valued.

    ``repr_advancing`` carries representative (grid-constant) offsets
    with the same zero/non-zero structure as ``advancing`` — for the
    fold entry the actual offsets scale linearly with the top width, so
    whether an axis moves is width-independent for any width >= 1.
    """

    position: int
    steps: Value
    advancing: Dict[str, Value]
    repr_advancing: Dict[str, int]
    is_fold: bool


@dataclass
class _VLevelStats:
    index: int
    runtime_sweep: Value
    runtime_is_int: Value  # bool Value: scalar engine would hold a Python int
    compute_bound_fraction: Value
    ingress_per_sweep: Dict[str, Value]
    delivered_per_sweep: Dict[str, Value]
    egress_per_sweep: Value
    psum_readback_per_sweep: Value
    upstream_buffer_req: Value
    peak_bw_elems_per_cycle: Value


def _wrap_scalar_traffic(traffic: Mapping[str, Any]) -> Dict[str, _VTraffic]:
    return {
        name: _VTraffic(tt.fetch, tt.unique, tt.delivered, tt.stationary)
        for name, tt in traffic.items()
    }


def _wrap_scalar_reuse(reuse: LevelReuse) -> _VReuse:
    """View a constant inner-level ``LevelReuse`` through the Value API."""
    return _VReuse(
        index=reuse.level.index,
        sweep_steps=reuse.level.sweep_steps,
        avg_active=reuse.level.avg_active,
        init=_VClass(
            count=1,
            traffic=_wrap_scalar_traffic(reuse.init.traffic),
            outputs_advance=False,
        ),
        classes=[
            _VClass(
                count=cls.count,
                traffic=_wrap_scalar_traffic(cls.traffic),
                outputs_advance=cls.outputs_advance,
            )
            for cls in reuse.classes
        ],
        output_name=reuse.output_name,
        unique_chunk_volumes=dict(reuse.unique_chunk_volumes),
        outputs_per_sweep=reuse.outputs_per_sweep,
        psum_factor=reuse.psum_factor,
        output_spatially_reduced=reuse.output_spatially_reduced,
    )


# ----------------------------------------------------------------------
# Level-0 reuse, vectorized over the top width W.
# ----------------------------------------------------------------------
def _moves_tensor_repr(info: TensorInfo, offsets: Mapping[str, int]) -> bool:
    return any(abs(axis.shift(offsets)) > 0 for axis in info.axes)


def _v_init_traffic(info: TensorInfo, table: AxisTable, active: Value) -> _VTraffic:
    """``_full_chunk_traffic`` with a grid-valued active-unit count."""
    fetch: Value = 1.0
    unique: Value = 1.0
    for extent, sigma in zip(table.extents, table.sigmas):
        fetch = fetch * extent
        unique = unique * (extent + (active - 1.0) * min(sigma, float(extent)))
    fetch = fetch * info.density
    unique = unique * info.density
    return _VTraffic(fetch, unique, fetch * active, False)


def _v_inner_reset_moves(
    info: TensorInfo, inner_entries: Sequence[_VEntry]
) -> Value:
    moves: Value = False
    for entry in inner_entries:
        if not _moves_tensor_repr(info, entry.repr_advancing):
            continue
        moves = _or(moves, entry.steps > 1)
    return moves


def _v_class_traffic(
    info: TensorInfo,
    table: AxisTable,
    active: Value,
    entry: _VEntry,
    inner_entries: Sequence[_VEntry],
    init_tt: _VTraffic,
) -> _VTraffic:
    """``_tensor_traffic`` with grid-valued offsets/active/reset flags.

    The full-refetch branch is arithmetically identical to the init
    traffic (every axis term is the full extent), so the init values are
    reused for it rather than recomputed.
    """
    irm = _v_inner_reset_moves(info, inner_entries)

    if not _is_arr(irm) and irm:
        # Constant full-refetch everywhere on the grid.
        return _VTraffic(init_tt.fetch, init_tt.unique, init_tt.delivered, False)

    advance_delta: Dict[int, Value] = {}
    for axis_index, axis in enumerate(info.axes):
        if not any(dim in entry.repr_advancing for dim in axis.dims):
            continue
        if abs(axis.shift(entry.repr_advancing)) <= 0:
            continue
        shift = abs(axis_shift(axis, entry.advancing))
        advance_delta[axis_index] = _minimum(
            _ceil_int(shift), table.extents[axis_index]
        )
    if not advance_delta:
        halo = _VTraffic(0.0, 0.0, 0.0, True)
    else:
        fetch: Value = 1.0
        unique: Value = 1.0
        for axis_index in range(len(info.axes)):
            extent = table.extents[axis_index]
            sigma = table.sigmas[axis_index]
            term = advance_delta.get(axis_index, extent)
            fetch = fetch * term
            unique = unique * (
                term + (active - 1.0) * _minimum(sigma, _as_float(term))
            )
        fetch = fetch * info.density
        unique = unique * info.density
        halo = _VTraffic(fetch, unique, fetch * active, False)

    if not _is_arr(irm):
        return halo

    return _VTraffic(
        fetch=_where(irm, init_tt.fetch, halo.fetch),
        unique=_where(irm, init_tt.unique, halo.unique),
        delivered=_where(irm, init_tt.delivered, halo.delivered),
        stationary=_where(irm, False, halo.stationary),
    )


def _v_psum_factor(
    entries: Sequence[_VEntry],
    output: TensorInfo,
    reduction_dims: Any,
) -> Value:
    """``_psum_factor`` with grid-valued fold step counts."""

    def advances_output(entry: _VEntry) -> bool:
        return any(
            abs(axis.shift(entry.repr_advancing)) > 0 for axis in output.axes
        )

    pos: Value = -1
    for index, entry in enumerate(entries):
        if not advances_output(entry):
            continue
        pos = _where(entry.steps > 1, index, pos)

    factor: Value = 1
    for index, entry in enumerate(entries):
        if advances_output(entry):
            continue
        if not (set(entry.repr_advancing) & reduction_dims):
            continue
        cond = _and(index < pos, entry.steps > 1)
        factor = factor * _where(cond, entry.steps, 1)
    return factor


def _v_level0_reuse(lowered: LoweredGroup, width: np.ndarray) -> _VReuse:
    """Level-0 ``analyze_level_reuse`` over the whole width axis at once."""
    top = lowered.top
    tensors = lowered.tensors
    spatial_chunks = top.spatial_chunks

    if top.has_spatial:
        folds: Value = _ceil_div(spatial_chunks, width)
        avg_active: Value = np.where(width > 1, spatial_chunks / folds, 1.0)
        avg_active = np.minimum(width.astype(np.float64), avg_active)
    else:
        folds = np.ones_like(width)
        avg_active = 1.0

    sweep_steps: Value = 1
    for directive in top.directives:
        sweep_steps = sweep_steps * (folds if directive.spatial else directive.steps)

    # Odometer entries (temporal directives + one joint fold entry).
    entries: List[_VEntry] = []
    fold_base: Dict[str, int] = {}
    fold_position: Optional[int] = None
    for position, directive in enumerate(top.directives):
        if directive.spatial:
            fold_base[directive.dim] = directive.offset
            if fold_position is None:
                fold_position = position
        else:
            assert directive.steps is not None
            entries.append(
                _VEntry(
                    position=position,
                    steps=directive.steps,
                    advancing={directive.dim: directive.offset},
                    repr_advancing={directive.dim: directive.offset},
                    is_fold=False,
                )
            )
    if fold_base:
        entries.append(
            _VEntry(
                position=fold_position if fold_position is not None else 0,
                steps=folds,
                advancing={dim: off * width for dim, off in fold_base.items()},
                repr_advancing=dict(fold_base),
                is_fold=True,
            )
        )
        entries.sort(key=lambda entry: entry.position)

    init_traffic = {
        info.name: _v_init_traffic(info, lowered.axis_tables[info.name], avg_active)
        for info in tensors.tensors
    }
    init = _VClass(count=1, traffic=init_traffic, outputs_advance=False)

    classes: List[_VClass] = []
    outer_product: Value = 1
    for index, entry in enumerate(entries):
        # A fold entry's step count is per-point; its class exists
        # wherever folds > 1 and is kept with count 0 elsewhere (inert
        # in every downstream accumulation). Grid-constant entries keep
        # the scalar structure exactly.
        generate = (
            spatial_chunks > 1 if entry.is_fold else entry.steps > 1
        )
        if generate:
            count = (entry.steps - 1) * outer_product
            inner_entries = tuple(entries[index + 1 :])
            traffic = {
                info.name: _v_class_traffic(
                    info,
                    lowered.axis_tables[info.name],
                    avg_active,
                    entry,
                    inner_entries,
                    init_traffic[info.name],
                )
                for info in tensors.tensors
            }
            outputs_advance = _not(traffic[tensors.output.name].stationary)
            classes.append(
                _VClass(
                    count=count,
                    traffic=traffic,
                    outputs_advance=outputs_advance,
                )
            )
        outer_product = outer_product * entry.steps

    unique_chunk_volumes = {
        info.name: init_traffic[info.name].unique for info in tensors.tensors
    }

    output = tensors.output
    outputs_per_sweep = output.volume(top.local_sizes) * output.density
    psum_factor = _v_psum_factor(entries, output, tensors.reduction_dims)
    out_table = lowered.axis_tables[output.name]
    output_sigma_zero = all(sigma == 0 for sigma in out_table.sigmas)
    if spatial_chunks > 1 and output_sigma_zero:
        output_spatially_reduced: Value = width > 1
    else:
        output_spatially_reduced = False

    return _VReuse(
        index=0,
        sweep_steps=sweep_steps,
        avg_active=avg_active,
        init=init,
        classes=classes,
        output_name=output.name,
        unique_chunk_volumes=unique_chunk_volumes,
        outputs_per_sweep=outputs_per_sweep,
        psum_factor=psum_factor,
        output_spatially_reduced=output_spatially_reduced,
    )


def _v_avg_step_change_ratio(vreuse: _VReuse) -> Dict[str, Value]:
    """``_avg_step_change_ratio`` over Values, same accumulation order."""
    steps = vreuse.sweep_steps
    ratios: Dict[str, Value] = {}
    for name, init_traffic in vreuse.init.traffic.items():
        full = init_traffic.fetch
        if full <= 0:
            ratios[name] = 0.0
            continue
        total = init_traffic.fetch + _vsum(
            [cls.count * cls.traffic[name].fetch for cls in vreuse.classes]
        )
        ratios[name] = _minimum(1.0, (total / steps) / full)
    return ratios


# ----------------------------------------------------------------------
# Performance recursion, grid-valued.
# ----------------------------------------------------------------------
def _v_level_performance(
    vreuse: _VReuse,
    lowered: LoweredGroup,
    bandwidth: Value,
    t_inner: Value,
    t_inner_is_int: Value,
    serial_init: bool,
    init_scale: Optional[Dict[str, Value]],
) -> _VLevelStats:
    """``_analyze_level_performance`` with Values everywhere.

    ``t_inner_is_int`` tracks a type subtlety of the scalar engine:
    Python's ``max`` returns its first maximal *argument*, so a sweep
    runtime stays a Python ``int`` wherever NoC delays (ints) dominate
    the (float) compute delay. The values agree either way — integer
    arithmetic is exact in float64 well past any modeled magnitude —
    but the materializer restores the exact Python type so reports are
    bit-identical under serialization too.
    """
    multicast = lowered.multicast
    latency = lowered.noc_latency
    out_name = vreuse.output_name
    hw_reduction = lowered.spatial_reduction

    def init_factor(name: str) -> Value:
        if init_scale is None:
            return 1.0
        return init_scale.get(name, 1.0)

    def ingress_volume(traffic: Dict[str, _VTraffic]) -> Value:
        total: Value = 0.0
        for name, tt in traffic.items():
            if name == out_name:
                continue
            total = total + (tt.unique if multicast else tt.delivered)
        return total

    def egress_volume(traffic: Dict[str, _VTraffic]) -> Value:
        tt = traffic[out_name]
        if hw_reduction:
            return tt.unique
        return _where(vreuse.output_spatially_reduced, tt.delivered, tt.unique)

    ingress_sweep: Dict[str, Value] = {}
    delivered_sweep: Dict[str, Value] = {}
    for name, tt in vreuse.init.traffic.items():
        if name == out_name:
            continue
        factor = init_factor(name)
        ingress_sweep[name] = (tt.unique if multicast else tt.delivered) * factor
        delivered_sweep[name] = tt.delivered * factor

    init_ingress = _vsum(list(ingress_sweep.values()))
    init_delay = _noc_delay(_ceil_int(init_ingress), bandwidth, latency)
    if serial_init:
        runtime: Value = init_delay + t_inner
        runtime_is_int: Value = t_inner_is_int
    else:
        runtime = _maximum(init_delay, t_inner)
        runtime_is_int = _or(init_delay >= t_inner, t_inner_is_int)
    compute_steps: Value = 1.0
    total_steps: Value = 1.0

    comm_volume: Value = init_ingress

    if hw_reduction:
        egress_hw_factor: Value = 1.0
    else:
        egress_hw_factor = _where(
            vreuse.output_spatially_reduced, vreuse.avg_active, 1.0
        )
    egress_total = vreuse.egress_per_sweep * egress_hw_factor
    readback_total = vreuse.psum_readback_per_sweep

    for cls in vreuse.classes:
        ingress = ingress_volume(cls.traffic)
        egress = _where(cls.outputs_advance, egress_volume(cls.traffic), 0.0)
        readback = _where(
            _and(cls.outputs_advance, readback_total > 0), egress, 0.0
        )
        ingress_delay = _noc_delay(_ceil_int(ingress + readback), bandwidth, latency)
        egress_delay = _noc_delay(_ceil_int(egress), bandwidth, latency)
        if lowered.double_buffered:
            step_delay = _maximum(
                _maximum(ingress_delay, egress_delay), t_inner
            )
            # max(int, int, float) yields the float only when it wins
            # strictly (earlier arguments win ties).
            step_is_int = _where(
                t_inner > _maximum(ingress_delay, egress_delay),
                t_inner_is_int,
                True,
            )
        else:
            step_delay = ingress_delay + egress_delay + t_inner
            step_is_int = t_inner_is_int
        runtime = runtime + cls.count * step_delay
        # A count-0 class (a spatial fold collapsed to one step at this
        # point) does not exist in the scalar engine, so it must not
        # influence the result type either.
        runtime_is_int = _where(
            cls.count > 0, _and(runtime_is_int, step_is_int), runtime_is_int
        )
        compute_steps = compute_steps + _where(step_delay == t_inner, cls.count, 0)
        total_steps = total_steps + cls.count
        comm_volume = comm_volume + cls.count * (ingress + readback + egress)
        for name, tt in cls.traffic.items():
            if name == out_name:
                continue
            volume = tt.unique if multicast else tt.delivered
            ingress_sweep[name] = ingress_sweep.get(name, 0.0) + cls.count * volume
            delivered_sweep[name] = (
                delivered_sweep.get(name, 0.0) + cls.count * tt.delivered
            )

    compute_fraction = compute_steps / total_steps
    egress_unaccounted = (
        egress_total
        + readback_total
        - _vsum(
            [
                _where(
                    cls.outputs_advance,
                    cls.count * egress_volume(cls.traffic),
                    0.0,
                )
                for cls in vreuse.classes
            ]
        )
    )
    peak_bw = (comm_volume + _maximum(0.0, egress_unaccounted)) / _maximum(
        total_steps * t_inner, 1.0
    )

    upstream_req = (
        2
        * _trunc_int(_vsum(list(vreuse.unique_chunk_volumes.values())))
        * lowered.element_bytes
    )

    return _VLevelStats(
        index=vreuse.index,
        runtime_sweep=runtime,
        runtime_is_int=runtime_is_int,
        compute_bound_fraction=compute_fraction,
        ingress_per_sweep=ingress_sweep,
        delivered_per_sweep=delivered_sweep,
        egress_per_sweep=egress_total,
        psum_readback_per_sweep=readback_total,
        upstream_buffer_req=upstream_req,
        peak_bw_elems_per_cycle=peak_bw,
    )


# ----------------------------------------------------------------------
# The whole-grid pipeline + materialization.
# ----------------------------------------------------------------------
def _column(value: Value, n: int) -> List[Any]:
    """Convert a Value to a per-point Python list (exact conversions)."""
    if _is_arr(value):
        return value.tolist()
    return [value] * n


def _dict_columns(values: Dict[str, Value], n: int) -> Dict[str, List[Any]]:
    return {name: _column(value, n) for name, value in values.items()}


_ROW_BUILDERS: Dict[Tuple[str, ...], Any] = {}


def _row_builder(keys: Tuple[str, ...]) -> Any:
    """Code-generate ``f(col0, col1, ...) -> [ {k0: v0, ...}, ... ]``.

    A dict literal inside a generated list comprehension beats
    ``dict(zip(keys, row))`` by ~2x (single BUILD_MAP opcode, no zip
    object per row) — and this is the hottest loop of materialization.
    Builders are cached per key tuple, which recur across layers.
    """
    builder = _ROW_BUILDERS.get(keys)
    if builder is None:
        params = ", ".join(f"c{i}" for i in range(len(keys)))
        entries = ", ".join(f"{key!r}: c{i}" for i, key in enumerate(keys))
        target = params if len(keys) > 1 else params + ","
        source = (
            f"def build({params}):\n"
            f"    return [{{{entries}}} for {target} in zip({params})]\n"
        )
        namespace: Dict[str, Any] = {}
        exec(source, namespace)  # noqa: S102 - static template, keys repr'd
        builder = namespace["build"]
        _ROW_BUILDERS[keys] = builder
    return builder


def _dict_rows(values: Dict[str, Value], n: int) -> List[Dict[str, Any]]:
    """Transpose a dict of columns into one plain dict per grid point.

    Grid-constant dicts (no array-valued entry) are built once and
    shared across all points — reports are plain read-only data, so
    aliasing is safe and skips the dominant per-point allocation.
    """
    if not any(_is_arr(value) for value in values.values()):
        return [dict(values)] * n
    builder = _row_builder(tuple(values))
    return builder(*(_column(value, n) for value in values.values()))


def _typed_column(values: Value, is_int: Value, n: int) -> List[Any]:
    """A column with the scalar engine's per-point int/float type restored."""
    columns = _column(values, n)
    flags = _column(is_int, n)
    return [int(v) if f else v for v, f in zip(columns, flags)]


_LEVEL_STATS_FIELDS: Tuple[str, ...] = (
    "index",
    "runtime_sweep",
    "compute_bound_fraction",
    "bottleneck",
    "ingress_per_sweep",
    "delivered_per_sweep",
    "egress_per_sweep",
    "psum_readback_per_sweep",
    "upstream_buffer_req",
    "peak_bw_elems_per_cycle",
)

_LAYER_ANALYSIS_FIELDS: Tuple[str, ...] = (
    "layer_name",
    "dataflow_name",
    "num_pes",
    "runtime",
    "total_ops",
    "utilization",
    "level_stats",
    "l2_reads",
    "l2_writes",
    "l1_reads",
    "l1_writes",
    "intermediate_reads",
    "intermediate_writes",
    "dram_reads",
    "dram_writes",
    "l1_buffer_req",
    "l2_buffer_req",
    "intermediate_buffer_reqs",
    "noc_bw_req_elems",
    "noc_bw_req_gbps",
    "reuse_factors",
    "max_reuse_factors",
    "energy_breakdown",
)


def _make(
    cls: type,
    fields: Dict[str, Any],
    _new: Any = object.__new__,
    _set: Any = object.__setattr__,
) -> Any:
    """Fast frozen-dataclass construction: bypass __init__'s per-field
    object.__setattr__ by installing the field dict directly. Equality,
    hashing, and pickling are unaffected (they read __dict__/fields)."""
    obj = _new(cls)
    _set(obj, "__dict__", fields)
    return obj


def _evaluate_feasible(
    lowered: LoweredGroup,
    num_pes: np.ndarray,
    bandwidth: np.ndarray,
) -> List[LayerAnalysis]:
    """Evaluate every feasible grid point of one lowered group."""
    layer = lowered.layer
    n = int(num_pes.shape[0])
    width = num_pes // lowered.ppc

    vreuse0 = _v_level0_reuse(lowered, width)
    vreuses: List[_VReuse] = [vreuse0] + [
        _wrap_scalar_reuse(reuse) for reuse in lowered.inner_reuses
    ]

    num_levels = lowered.num_levels
    level_stats: List[_VLevelStats] = []
    t_inner: Value = lowered.compute_delay
    t_inner_is_int: Value = False
    for index in range(num_levels - 1, -1, -1):
        if index == 0:
            init_scale = None
        else:
            init_scale = _v_avg_step_change_ratio(vreuses[index - 1])
        stats = _v_level_performance(
            vreuses[index],
            lowered,
            bandwidth,
            t_inner,
            t_inner_is_int,
            serial_init=index == 0,
            init_scale=init_scale,
        )
        level_stats.append(stats)
        t_inner = stats.runtime_sweep
        t_inner_is_int = stats.runtime_is_int
    level_stats.reverse()
    runtime: Value = level_stats[0].runtime_sweep * layer.groups
    runtime_is_int: Value = level_stats[0].runtime_is_int

    # ------------------------------------------------------------------
    # Accounting (mirrors analyze_layer's accounting block).
    # ------------------------------------------------------------------
    tensors = lowered.tensors
    total_ops = layer.effective_ops()
    group_factor = layer.groups

    multipliers: List[Value] = [1.0]
    running: Value = 1.0
    for vreuse in vreuses[:-1]:
        running = running * (vreuse.sweep_steps * vreuse.avg_active)
        multipliers.append(running)

    l2_reads: Dict[str, Value] = {}
    l2_writes: Dict[str, Value] = {}
    l1_reads: Dict[str, Value] = {}
    l1_writes: Dict[str, Value] = {}
    intermediate_reads: Value = 0.0
    intermediate_writes: Value = 0.0

    top = level_stats[0]
    out_name = tensors.output.name
    for name, volume in top.ingress_per_sweep.items():
        l2_reads[name] = volume * group_factor
    l2_reads[out_name] = (
        l2_reads.get(out_name, 0.0) + top.psum_readback_per_sweep * group_factor
    )
    l2_writes[out_name] = top.egress_per_sweep * group_factor

    bottom = level_stats[-1]
    bottom_multiplier = multipliers[-1] * group_factor
    for name, volume in bottom.delivered_per_sweep.items():
        l1_writes[name] = volume * bottom_multiplier
    has_reduction = bool(tensors.reduction_dims)
    for info in tensors.inputs:
        l1_reads[info.name] = l1_reads.get(info.name, 0.0) + total_ops
    l1_reads[out_name] = total_ops if has_reduction else 0.0
    l1_writes[out_name] = l1_writes.get(out_name, 0.0) + total_ops

    for depth in range(1, len(level_stats)):
        stats = level_stats[depth]
        above = level_stats[depth - 1]
        multiplier = multipliers[depth] * group_factor
        multiplier_above = multipliers[depth - 1] * group_factor
        intermediate_reads = intermediate_reads + (
            _vsum(list(stats.ingress_per_sweep.values()))
            + stats.psum_readback_per_sweep
        ) * multiplier
        intermediate_writes = intermediate_writes + (
            _vsum(list(above.delivered_per_sweep.values())) * multiplier_above
        )
        intermediate_reads = intermediate_reads + stats.egress_per_sweep * multiplier
        intermediate_writes = intermediate_writes + stats.egress_per_sweep * multiplier

    element_bytes = lowered.element_bytes
    buffering = 2 if lowered.double_buffered else 1
    l1_req = lowered.l1_req
    l2_req = (
        buffering
        * _trunc_int(
            _vsum(
                [
                    vreuse0.unique_chunk_volumes[info.name]
                    / max(info.density, 1e-12)
                    for info in tensors.tensors
                ]
            )
        )
        * element_bytes
    )
    intermediate_reqs = lowered.intermediate_reqs

    dram_reads: Dict[str, Value] = {}
    dram_writes: Dict[str, Value] = {}
    if lowered.l2_size is None:
        l2_fits: Value = True
    else:
        l2_fits = lowered.l2_size >= l2_req
    for info in tensors.inputs:
        streamed: Value = layer.touched_tensor_volume(info.name) * info.density
        if l2_fits is not True:
            streamed = _where(
                l2_fits,
                streamed,
                _maximum(streamed, l2_reads.get(info.name, 0.0)),
            )
        dram_reads[info.name] = streamed
    dram_writes[out_name] = layer.tensor_volume(out_name) * tensors.output.density
    for name, volume in dram_reads.items():
        l2_writes[name] = l2_writes.get(name, 0.0) + volume

    reuse_factors: Dict[str, Value] = {}
    max_reuse_factors: Dict[str, Value] = {}
    for info in tensors.inputs:
        fetched = l2_reads.get(info.name, 0.0)
        if _is_arr(fetched):
            safe = np.where(fetched != 0.0, fetched, 1.0)
            reuse_factors[info.name] = np.where(
                fetched != 0.0, total_ops / safe, float("inf")
            )
        else:
            reuse_factors[info.name] = (
                total_ops / fetched if fetched else float("inf")
            )
        volume = layer.touched_tensor_volume(info.name) * info.density
        max_reuse_factors[info.name] = (
            total_ops / volume if volume else float("inf")
        )

    noc_bw_req = top.peak_bw_elems_per_cycle
    noc_bw_req_gbps = noc_bw_req * element_bytes * lowered.clock_ghz

    energy_model = lowered.energy_model
    l1_capacity = lowered.l1_size if lowered.l1_size is not None else max(l1_req, 1)
    e_l1_read = energy_model.sram_access(l1_capacity)
    e_l1_write = energy_model.sram_write(l1_capacity)
    if lowered.l2_size is not None:
        e_l2_read: Value = energy_model.sram_access(lowered.l2_size)
        e_l2_write: Value = energy_model.sram_write(lowered.l2_size)
    else:
        l2_capacity = _maximum(l2_req, 1)
        e_l2_read = energy_model.sram_base + energy_model.sram_sqrt * np.sqrt(
            l2_capacity
        )
        e_l2_write = e_l2_read * energy_model.sram_write_factor
    noc_traffic = (
        _vsum(list(l2_reads.values())) + top.egress_per_sweep * group_factor
    )
    energy_breakdown: Dict[str, Value] = {
        "MAC": total_ops * energy_model.mac,
        "L1 read": _vsum(list(l1_reads.values())) * e_l1_read,
        "L1 write": _vsum(list(l1_writes.values())) * e_l1_write,
        "L2 read": _vsum(list(l2_reads.values())) * e_l2_read,
        "L2 write": _vsum(list(l2_writes.values())) * e_l2_write,
        "intermediate": (
            intermediate_reads * e_l1_read + intermediate_writes * e_l1_write
        ),
        "NoC": noc_traffic * energy_model.noc_hop,
        "DRAM": (
            _vsum(list(dram_reads.values())) + _vsum(list(dram_writes.values()))
        )
        * energy_model.dram,
    }

    if lowered.dram_bandwidth is not None:
        dram_traffic = _vsum(list(dram_reads.values())) + _vsum(
            list(dram_writes.values())
        )
        dram_floor = dram_traffic / lowered.dram_bandwidth
        runtime_is_int = _and(runtime_is_int, runtime >= dram_floor)
        runtime = _maximum(runtime, dram_floor)

    utilization = _minimum(
        1.0, total_ops / (runtime * num_pes * lowered.vector_width)
    )

    # ------------------------------------------------------------------
    # Materialize one LayerAnalysis per point. Columns are transposed
    # into per-point rows with C-level zip, then zipped straight into
    # field dicts — this loop dominates whole-grid wall time, so no
    # per-point Python comprehensions.
    # ------------------------------------------------------------------
    level_rows: List[List[LevelStats]] = []
    for stats in level_stats:
        cbf_col = _column(stats.compute_bound_fraction, n)
        rows = [
            _make(LevelStats, dict(zip(_LEVEL_STATS_FIELDS, row)))
            for row in zip(
                [stats.index] * n,
                _typed_column(stats.runtime_sweep, stats.runtime_is_int, n),
                cbf_col,
                ["compute" if c >= 0.5 else "communication" for c in cbf_col],
                _dict_rows(stats.ingress_per_sweep, n),
                _dict_rows(stats.delivered_per_sweep, n),
                _column(stats.egress_per_sweep, n),
                _column(stats.psum_readback_per_sweep, n),
                _column(stats.upstream_buffer_req, n),
                _column(stats.peak_bw_elems_per_cycle, n),
            )
        ]
        level_rows.append(rows)
    stats_tuples = list(zip(*level_rows))

    layer_name = layer.name
    dataflow_name = lowered.dataflow.name
    l1_req_int = int(l1_req)
    inter_reqs = tuple(intermediate_reqs)

    return [
        _make(LayerAnalysis, dict(zip(_LAYER_ANALYSIS_FIELDS, row)))
        for row in zip(
            [layer_name] * n,
            [dataflow_name] * n,
            num_pes.tolist(),
            _typed_column(runtime, runtime_is_int, n),
            [total_ops] * n,
            _column(utilization, n),
            stats_tuples,
            _dict_rows(l2_reads, n),
            _dict_rows(l2_writes, n),
            _dict_rows(l1_reads, n),
            _dict_rows(l1_writes, n),
            _column(intermediate_reads, n),
            _column(intermediate_writes, n),
            _dict_rows(dram_reads, n),
            _dict_rows(dram_writes, n),
            [l1_req_int] * n,
            _column(l2_req, n),
            [inter_reqs] * n,
            _column(noc_bw_req, n),
            _column(noc_bw_req_gbps, n),
            _dict_rows(reuse_factors, n),
            _dict_rows(max_reuse_factors, n),
            _dict_rows(energy_breakdown, n),
        )
    ]


def evaluate_grid(
    layer: Layer,
    dataflow: Dataflow,
    accelerators: Sequence[Accelerator],
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    lowered: Optional[LoweredGroup] = None,
) -> List[EvalOutcome]:
    """Evaluate one grid group; outcomes come back in input order.

    Every accelerator must share one template (all hardware fields but
    ``num_pes`` and NoC bandwidth); pass ``lowered`` to reuse a lowering
    across calls. Points whose PE count cannot host the dataflow's
    cluster hierarchy come back as ``BindingError`` outcomes with the
    exact scalar message. Raises :class:`VectorLoweringError` when the
    group itself cannot be lowered (callers fall back to the scalar
    engines point by point).
    """
    accelerators = list(accelerators)
    if not accelerators:
        return []
    if lowered is None:
        lowered = lower_group(layer, dataflow, accelerators[0], energy_model)
    template = lowered.template
    for accelerator in accelerators:
        if accelerator_template(accelerator) != template:
            raise VectorLoweringError(
                "grid group mixes accelerator templates; only num_pes and "
                "NoC bandwidth may vary within a vectorized group"
            )

    num_pes = np.array([a.num_pes for a in accelerators], dtype=np.int64)
    bandwidth = np.array([a.noc.bandwidth for a in accelerators], dtype=np.int64)
    feasible = num_pes >= lowered.ppc

    outcomes: List[Optional[EvalOutcome]] = [None] * len(accelerators)
    if not feasible.all():
        message = (
            f"{dataflow.name} on {layer.name}: cluster hierarchy needs "
            f"{lowered.ppc} PEs but only {{pes}} exist"
        )
        for index in np.flatnonzero(~feasible):
            outcomes[index] = EvalOutcome(
                report=None,
                error_type="BindingError",
                error_message=message.format(pes=int(num_pes[index])),
            )

    feasible_indices = np.flatnonzero(feasible)
    if feasible_indices.size:
        reports = _evaluate_feasible(
            lowered, num_pes[feasible_indices], bandwidth[feasible_indices]
        )
        for position, index in enumerate(feasible_indices):
            outcomes[index] = _make(
                EvalOutcome,
                {
                    "report": reports[position],
                    "error_type": None,
                    "error_message": None,
                    "cached": False,
                },
            )

    return [outcome for outcome in outcomes if outcome is not None]


__all__ = ["evaluate_grid", "Value"]
