"""Lowering: partially evaluate the cost model against a grid template.

A *grid group* is a set of evaluation points that share one layer, one
dataflow, one energy model, and one accelerator **template** — every
hardware field except ``num_pes`` and the NoC ``bandwidth``, the two
axes the paper's Figure 13 DSE sweeps. For such a group, almost the
entire analytical pipeline is a constant:

- the memoized :class:`~repro.dataflow.directives.SizeExpr` closure
  trees evaluate to plain integers (directive sizes, offsets, chunk
  counts, cluster sizes) — this is the "lower the closure trees" step:
  symbolic sizes become literals before any per-point work happens;
- every cluster level *below* the top has a constant width (the
  cluster sizes), so its binding and reuse analysis are computed once
  here with the unmodified scalar engines;
- the top level's directive geometry is constant too; only its spatial
  fold count, average active width, and fold advance offsets depend on
  ``num_pes`` (through the top width ``W = num_pes // pes_per_cluster``)
  and are left symbolic for :mod:`repro.vector.engine` to evaluate as
  arrays.

Anything the lowering cannot express raises
:class:`VectorLoweringError`; the batch backend then falls back to the
scalar engines point by point, so the lowering never has to be
complete — only honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import evaluate_size
from repro.engines.binding import BoundLevel, _bind_level
from repro.engines.reuse import LevelReuse, analyze_level_reuse
from repro.engines.tensor_analysis import TensorAnalysis, analyze_tensors
from repro.errors import BindingError, DataflowError
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.layer import Layer
from repro.tensors.axes import Axis, ConvOutputAxis, PlainAxis, SlidingInputAxis
from repro.util.intmath import num_chunks, prod


class VectorLoweringError(Exception):
    """The group cannot be lowered to an array program.

    Raised for heterogeneous templates, unsupported axis kinds, or any
    mapping the constant stage of the scalar pipeline already rejects
    (the per-point scalar fallback reproduces those rejections exactly).
    """


def accelerator_template(accelerator: Accelerator) -> Tuple[Any, ...]:
    """The hashable grid template: every field but ``num_pes``/bandwidth.

    Two accelerators with equal templates differ only along the grid
    axes, so their evaluation points can share one lowered program.
    """
    return (
        accelerator.l1_size,
        accelerator.l2_size,
        accelerator.noc.avg_latency,
        accelerator.noc.multicast,
        accelerator.spatial_reduction,
        accelerator.double_buffered,
        accelerator.vector_width,
        accelerator.element_bytes,
        accelerator.clock_ghz,
        accelerator.dram_bandwidth,
    )


#: The hashable partition key ``group_key`` returns.
GroupKey = Tuple[Any, ...]


def group_key(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel,
) -> GroupKey:
    """Partition key for grid grouping inside a batch of points.

    Layer and dataflow are keyed by identity (sweeps share the objects
    across grid points); the energy model is a small frozen dataclass
    and is keyed by value.
    """
    return (id(layer), id(dataflow), energy_model, accelerator_template(accelerator))


@dataclass(frozen=True)
class LoweredDirective:
    """One top-level map directive with all sizes folded to integers.

    ``steps`` is the temporal step count for temporal directives and
    ``None`` for spatial directives (their step count is the per-point
    fold count ``ceil(spatial_chunks / W)``).
    """

    dim: str
    spatial: bool
    size: int
    offset: int
    chunks: int
    steps: Optional[int]
    edge_size: int


@dataclass(frozen=True)
class LoweredTopLevel:
    """The top cluster level with the width left symbolic."""

    directives: Tuple[LoweredDirective, ...]
    local_sizes: Mapping[str, int]
    spatial_offsets: Mapping[str, int]
    spatial_chunks: int
    has_spatial: bool

    def chunk_sizes(self) -> Dict[str, int]:
        return {d.dim: d.size for d in self.directives}


@dataclass(frozen=True)
class AxisTable:
    """Per-tensor constants the array program reads per top-level axis."""

    extents: Tuple[int, ...]
    sigmas: Tuple[float, ...]  # |shift| under the level's spatial offsets


@dataclass(frozen=True)
class LoweredGroup:
    """Everything grid-constant, precomputed once per group."""

    layer: Layer
    dataflow: Dataflow
    energy_model: EnergyModel
    template: Tuple[Any, ...]
    # Template hardware fields (never read num_pes / noc.bandwidth).
    l1_size: Optional[int]
    l2_size: Optional[int]
    noc_latency: int
    multicast: bool
    spatial_reduction: bool
    double_buffered: bool
    vector_width: int
    element_bytes: int
    clock_ghz: float
    dram_bandwidth: Optional[int]
    # Binding constants.
    row_rep: str
    col_rep: str
    cluster_sizes: Tuple[int, ...]
    ppc: int  # PEs per top-level cluster
    top: LoweredTopLevel
    inner_levels: Tuple[BoundLevel, ...]
    inner_reuses: Tuple[LevelReuse, ...]
    tensors: TensorAnalysis
    axis_tables: Mapping[str, AxisTable]
    input_density: float
    compute_delay: float
    # Innermost-chunk constants for the accounting stage.
    l1_req: int
    intermediate_reqs: Tuple[int, ...]

    @property
    def num_levels(self) -> int:
        return 1 + len(self.inner_levels)


def axis_shift(axis: Axis, offsets: Mapping[str, Any]) -> Any:
    """Replicate :meth:`Axis.shift` for scalar *or array* offsets.

    The scalar implementations wrap the result in ``float(...)``, which
    rejects arrays; this helper performs the identical arithmetic (same
    operations, same order, hence bit-identical float results) while
    accepting NumPy arrays as offset values.
    """
    import numpy as np

    def as_float(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return value.astype(np.float64)
        return float(value)

    if isinstance(axis, PlainAxis):
        return as_float(offsets.get(axis.dim, 0))
    if isinstance(axis, SlidingInputAxis):
        return as_float(
            offsets.get(axis.out_dim, 0) * axis.stride
            + offsets.get(axis.kernel_dim, 0) * axis.dilation
        )
    if isinstance(axis, ConvOutputAxis):
        numerator = (
            offsets.get(axis.in_dim, 0)
            - offsets.get(axis.kernel_dim, 0) * axis.dilation
        )
        return numerator / axis.stride
    raise VectorLoweringError(f"unsupported axis kind {type(axis).__name__}")


def _check_axes_supported(tensors: TensorAnalysis) -> None:
    for info in tensors.tensors:
        for axis in info.axes:
            if not isinstance(axis, (PlainAxis, SlidingInputAxis, ConvOutputAxis)):
                raise VectorLoweringError(
                    f"tensor {info.name} uses unsupported axis kind "
                    f"{type(axis).__name__}"
                )


def _lower_top_level(
    spec_maps: Tuple[Any, ...],
    local_sizes: Mapping[str, int],
    full_sizes: Mapping[str, int],
    dims: List[str],
    strides: Mapping[str, int],
    context: str,
) -> LoweredTopLevel:
    """The width-independent half of ``_bind_level`` for the top level.

    Mirrors :func:`repro.engines.binding._bind_level` exactly, except
    that spatial step counts (which depend on the top width) are left
    symbolic. All raised errors are width-independent, so they apply to
    every point of the grid — the caller turns them into a lowering
    failure and the scalar fallback reproduces them per point.
    """
    bound: List[LoweredDirective] = []
    seen: Dict[str, int] = {}
    spatial_offsets: Dict[str, int] = {dim: 0 for dim in dims}
    spatial_chunk_counts: List[int] = []

    for directive in spec_maps:
        if directive.dim not in dims:
            raise BindingError(
                f"{context}: dimension {directive.dim} is not part of this "
                f"binding's dimension set {dims}"
            )
        if directive.dim in seen:
            raise BindingError(
                f"{context}: dimension {directive.dim} mapped twice in one level"
            )
        local = local_sizes.get(directive.dim, 1)
        size = min(evaluate_size(directive.size, full_sizes, strides), local)
        offset = evaluate_size(directive.offset, full_sizes, strides)
        if size < 1 or offset < 1:
            raise BindingError(
                f"{context}: non-positive size/offset on {directive.dim} "
                f"(size={size}, offset={offset})"
            )
        chunks = num_chunks(local, size, offset)
        if directive.spatial:
            spatial_offsets[directive.dim] = offset
            spatial_chunk_counts.append(chunks)
        edge_size = local - (chunks - 1) * offset if chunks > 1 else size
        bound.append(
            LoweredDirective(
                dim=directive.dim,
                spatial=directive.spatial,
                size=size,
                offset=offset,
                chunks=chunks,
                steps=None if directive.spatial else chunks,
                edge_size=max(1, edge_size),
            )
        )
        seen[directive.dim] = size

    spatial_chunks = max(spatial_chunk_counts) if spatial_chunk_counts else 1

    inferred = [
        LoweredDirective(
            dim=dim,
            spatial=False,
            size=local_sizes.get(dim, 1),
            offset=local_sizes.get(dim, 1),
            chunks=1,
            steps=1,
            edge_size=local_sizes.get(dim, 1),
        )
        for dim in dims
        if dim not in seen
    ]

    return LoweredTopLevel(
        directives=tuple(inferred) + tuple(bound),
        local_sizes={dim: local_sizes.get(dim, 1) for dim in dims},
        spatial_offsets=spatial_offsets,
        spatial_chunks=spatial_chunks,
        has_spatial=bool(spatial_chunk_counts),
    )


def lower_group(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> LoweredGroup:
    """Lower one grid group to its constant program.

    ``accelerator`` supplies the template fields only; its ``num_pes``
    and NoC bandwidth are never read. Raises :class:`VectorLoweringError`
    when the group is outside the expressible space (including mappings
    the scalar binding rejects independently of the grid axes).
    """
    try:
        return _lower_group(layer, dataflow, accelerator, energy_model)
    except VectorLoweringError:
        raise
    except (BindingError, DataflowError) as error:
        raise VectorLoweringError(str(error)) from error


def _lower_group(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel,
) -> LoweredGroup:
    from repro.engines.binding import _relevant_dims

    dims, row_rep, col_rep = _relevant_dims(dataflow, layer)
    full_sizes = layer.all_dim_sizes()
    level_specs = dataflow.levels()

    cluster_sizes = []
    for spec in level_specs[:-1]:
        size = evaluate_size(spec.cluster_size, full_sizes)
        if size < 1:
            raise BindingError(
                f"{dataflow.name} on {layer.name}: cluster size {size} < 1"
            )
        cluster_sizes.append(size)
    ppc = prod(cluster_sizes)

    strides = {"Y": layer.stride[0], "X": layer.stride[1]}

    local_sizes: Dict[str, int] = {dim: full_sizes[dim] for dim in dims}
    top = _lower_top_level(
        spec_maps=level_specs[0].maps,
        local_sizes=local_sizes,
        full_sizes=full_sizes,
        dims=dims,
        strides=strides,
        context=f"{dataflow.name} on {layer.name}, level 0",
    )

    # Inner levels have constant widths (the cluster sizes): bind and
    # reuse-analyze them once with the unmodified scalar engines.
    inner_levels: List[BoundLevel] = []
    sizes = top.chunk_sizes()
    for index, spec in enumerate(level_specs[1:], start=1):
        level = _bind_level(
            index=index,
            spec_maps=spec.maps,
            width=cluster_sizes[index - 1],
            local_sizes=sizes,
            full_sizes=full_sizes,
            dims=dims,
            strides=strides,
            context=f"{dataflow.name} on {layer.name}, level {index}",
        )
        inner_levels.append(level)
        sizes = level.chunk_sizes()

    tensors = analyze_tensors(layer, row_rep, col_rep)
    _check_axes_supported(tensors)
    inner_reuses = tuple(analyze_level_reuse(level, tensors) for level in inner_levels)

    # Per-tensor axis constants under the top level's chunk geometry.
    top_sizes = top.chunk_sizes()
    axis_tables = {
        info.name: AxisTable(
            extents=tuple(axis.extent(top_sizes) for axis in info.axes),
            sigmas=tuple(
                abs(axis.shift(top.spatial_offsets)) for axis in info.axes
            ),
        )
        for info in tensors.tensors
    }

    input_density = 1.0
    for info in tensors.inputs:
        input_density *= info.density

    innermost_sizes = inner_levels[-1].chunk_sizes() if inner_levels else top_sizes
    ops_per_step = tensors.ops_per_chunk(innermost_sizes) * input_density
    compute_delay = max(1.0, ops_per_step / accelerator.vector_width)

    element_bytes = accelerator.element_bytes
    buffering = 2 if accelerator.double_buffered else 1
    l1_req = (
        buffering
        * sum(info.volume(innermost_sizes) for info in tensors.tensors)
        * element_bytes
    )
    # ``bound.levels[:-1]`` in the scalar engine: the top level plus all
    # inner levels except the innermost. Chunk sizes are constants.
    all_chunk_sizes = [top_sizes] + [level.chunk_sizes() for level in inner_levels]
    intermediate_reqs = tuple(
        buffering
        * sum(info.volume(level_sizes) for info in tensors.tensors)
        * element_bytes
        for level_sizes in all_chunk_sizes[:-1]
    )

    return LoweredGroup(
        layer=layer,
        dataflow=dataflow,
        energy_model=energy_model,
        template=accelerator_template(accelerator),
        l1_size=accelerator.l1_size,
        l2_size=accelerator.l2_size,
        noc_latency=accelerator.noc.avg_latency,
        multicast=accelerator.noc.multicast,
        spatial_reduction=accelerator.spatial_reduction,
        double_buffered=accelerator.double_buffered,
        vector_width=accelerator.vector_width,
        element_bytes=element_bytes,
        clock_ghz=accelerator.clock_ghz,
        dram_bandwidth=accelerator.dram_bandwidth,
        row_rep=row_rep,
        col_rep=col_rep,
        cluster_sizes=tuple(cluster_sizes),
        ppc=ppc,
        top=top,
        inner_levels=tuple(inner_levels),
        inner_reuses=inner_reuses,
        tensors=tensors,
        axis_tables=axis_tables,
        input_density=input_density,
        compute_delay=compute_delay,
        l1_req=int(l1_req),
        intermediate_reqs=tuple(int(v) for v in intermediate_reqs),
    )


__all__ = [
    "VectorLoweringError",
    "LoweredGroup",
    "LoweredDirective",
    "LoweredTopLevel",
    "AxisTable",
    "accelerator_template",
    "group_key",
    "axis_shift",
    "lower_group",
]
