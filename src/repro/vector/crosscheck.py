"""Differential verification of the vector engine against the scalar one.

``crosscheck_vector`` replays grid points through ``analyze_layer`` and
compares the vector engine's materialized reports field by field. The
default tolerance is *zero*: the vector engine replicates the scalar
arithmetic operation for operation, so floats must match bit for bit
(IEEE-754 float64 ops are identical between CPython and NumPy). A
relative tolerance can be supplied for exploratory use, but CI runs the
exact check.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.engines.analysis import analyze_layer
from repro.errors import BindingError, DataflowError
from repro.exec.serialize import EvalOutcome
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.layer import Layer
from repro.dataflow.dataflow import Dataflow
from repro.vector.engine import evaluate_grid


@dataclass(frozen=True)
class Mismatch:
    """One field where scalar and vector engines disagree."""

    point: int
    path: str
    scalar: Any
    vector: Any

    def __str__(self) -> str:
        return f"point {self.point}: {self.path}: scalar={self.scalar!r} vector={self.vector!r}"


@dataclass(frozen=True)
class CrosscheckReport:
    """Outcome of one differential run."""

    points_checked: int
    mismatches: Tuple[Mismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _float_equal(a: float, b: float, rtol: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    if a == b:
        return True
    if rtol <= 0.0:
        return False
    if math.isinf(a) or math.isinf(b):
        return a == b
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rtol * scale


def _compare(path: str, a: Any, b: Any, rtol: float, out: List[Tuple[str, Any, Any]]) -> None:
    if isinstance(a, Mapping) or isinstance(b, Mapping):
        if not (isinstance(a, Mapping) and isinstance(b, Mapping)):
            out.append((path, a, b))
            return
        # Key *order* is part of the contract (serialization preserves it).
        if list(a.keys()) != list(b.keys()):
            out.append((path + ".keys", list(a.keys()), list(b.keys())))
            return
        for key in a:
            _compare(f"{path}[{key!r}]", a[key], b[key], rtol, out)
        return
    if isinstance(a, (tuple, list)) or isinstance(b, (tuple, list)):
        if type(a) is not type(b) or len(a) != len(b):
            out.append((path, a, b))
            return
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            _compare(f"{path}[{index}]", item_a, item_b, rtol, out)
        return
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        if type(a) is not type(b):
            out.append((path, type(a), type(b)))
            return
        for field in dataclasses.fields(a):
            _compare(
                f"{path}.{field.name}",
                getattr(a, field.name),
                getattr(b, field.name),
                rtol,
                out,
            )
        return
    if isinstance(a, bool) or isinstance(b, bool):
        if bool(a) is not bool(b):
            out.append((path, a, b))
        return
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            out.append((path, a, b))
            return
        # int-vs-float type drift is a mismatch too: serialization and
        # downstream formatting depend on it.
        if isinstance(a, float) is not isinstance(b, float):
            out.append((path + ".type", type(a).__name__, type(b).__name__))
            return
        if not _float_equal(float(a), float(b), rtol):
            out.append((path, a, b))
        return
    if a != b:
        out.append((path, a, b))


def compare_outcomes(
    scalar: EvalOutcome, vector: EvalOutcome, rtol: float = 0.0
) -> List[Tuple[str, Any, Any]]:
    """All field-level differences between two outcomes (empty = parity)."""
    diffs: List[Tuple[str, Any, Any]] = []
    if scalar.ok != vector.ok:
        diffs.append(("ok", scalar.ok, vector.ok))
        return diffs
    if not scalar.ok:
        _compare("error_type", scalar.error_type, vector.error_type, rtol, diffs)
        _compare("error_message", scalar.error_message, vector.error_message, rtol, diffs)
        return diffs
    _compare("report", scalar.report, vector.report, rtol, diffs)
    return diffs


def _scalar_outcome(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel,
) -> EvalOutcome:
    try:
        report = analyze_layer(layer, dataflow, accelerator, energy_model)
    except (BindingError, DataflowError) as error:
        return EvalOutcome(
            report=None, error_type=type(error).__name__, error_message=str(error)
        )
    return EvalOutcome(report=report)


def crosscheck_vector(
    layer: Layer,
    dataflow: Dataflow,
    accelerators: Sequence[Accelerator],
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    rtol: float = 0.0,
    sample: Optional[int] = None,
    max_mismatches: int = 32,
) -> CrosscheckReport:
    """Differentially verify the vector engine on one grid group.

    ``sample`` limits how many points are replayed through the scalar
    engines (evenly spaced over the grid, deterministic); the vector
    engine always evaluates the full grid so materialization itself is
    exercised. Raises :class:`~repro.vector.lower.VectorLoweringError`
    if the group cannot be lowered — the caller decides whether that is
    expected (fallback coverage) or a bug.
    """
    accelerators = list(accelerators)
    vector_outcomes = evaluate_grid(layer, dataflow, accelerators, energy_model)

    indices = range(len(accelerators))
    if sample is not None and 0 < sample < len(accelerators):
        stride = len(accelerators) / sample
        indices = sorted({int(i * stride) for i in range(sample)})

    mismatches: List[Mismatch] = []
    checked = 0
    for index in indices:
        checked += 1
        scalar = _scalar_outcome(layer, dataflow, accelerators[index], energy_model)
        for path, a, b in compare_outcomes(scalar, vector_outcomes[index], rtol):
            if len(mismatches) < max_mismatches:
                mismatches.append(Mismatch(point=index, path=path, scalar=a, vector=b))
    return CrosscheckReport(points_checked=checked, mismatches=tuple(mismatches))


__all__ = [
    "Mismatch",
    "CrosscheckReport",
    "compare_outcomes",
    "crosscheck_vector",
]
