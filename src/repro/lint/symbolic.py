"""Symbolic lint rules: certify a mapping over an entire shape range.

The ``DF0xx`` rules judge one mapping against one concrete layer. The
``DF2xx`` family lifts the three hardware-facing checks — L1 buffer
fit, PE utilization, and NoC bandwidth — to a
:class:`~repro.absint.shapes.ShapeBox`: one abstract-interpretation
pass over interval dimension extents decides the property for *every*
layer in the box at once. A negative finding here means the property
fails for every member (the interval lower bound already violates the
budget); a positive certificate means it holds for every member (the
interval upper bound fits). Both carry provenance
``"symbolic: proven-for-range"`` — they are theorems about the whole
family, not spot checks. Range-straddling outcomes (the interval
crosses the budget) are reported with provenance
``"symbolic: range-dependent"`` where actionable, and suppressed where
silence is the honest answer.

Entry point: :func:`lint_symbolic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
)

from repro.lint.diagnostics import Diagnostic, FixIt, LintReport, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.absint.engine import AbstractAnalysis, HardwareBox
    from repro.absint.shapes import ShapeBox
    from repro.dataflow.dataflow import Dataflow

__all__ = [
    "PROVEN_FOR_RANGE",
    "RANGE_DEPENDENT",
    "SYMBOLIC_RULES",
    "SymbolicRule",
    "SymbolicRuleContext",
    "lint_symbolic",
]

PROVEN_FOR_RANGE = "symbolic: proven-for-range"
RANGE_DEPENDENT = "symbolic: range-dependent"

#: Utilization at or above this fraction counts as "full" (matches the
#: concrete DF009 threshold, tolerant of float accumulation).
_FULL_UTILIZATION = 0.999


@dataclass
class SymbolicRuleContext:
    """Shared state for one symbolic lint pass.

    The abstract analysis is computed lazily and at most once; a raise
    is remembered as :attr:`failure` (the abstract engine only raises
    when *every* concretization in the box fails to bind, so a failure
    here is itself a range-wide theorem — surfaced as ``DF200``).
    """

    dataflow: "Dataflow"
    box: "ShapeBox"
    hw: "HardwareBox"
    _analysis: "Optional[AbstractAnalysis]" = field(
        default=None, init=False, repr=False
    )
    _failure: Optional[str] = field(default=None, init=False, repr=False)
    _tried: bool = field(default=False, init=False, repr=False)

    @property
    def analysis(self) -> "Optional[AbstractAnalysis]":
        if not self._tried:
            self._tried = True
            try:
                from repro.absint.engine import abstract_analyze

                self._analysis = abstract_analyze(self.box, self.dataflow, self.hw)
            except Exception as exc:
                self._failure = str(exc)
        return self._analysis

    @property
    def failure(self) -> Optional[str]:
        self.analysis  # noqa: B018 - force the lazy evaluation
        return self._failure

    def range_note(self) -> str:
        """Suffix qualifying certificates when binding caveats exist."""
        analysis = self.analysis
        if analysis is None or not analysis.caveats:
            return ""
        return (
            f" [{len(analysis.caveats)} binding caveat(s): the certificate "
            f"covers the bindable subfamily of the box]"
        )

    def diag(
        self,
        code: str,
        message: str,
        severity: Optional[Severity] = None,
        fixit: Optional[FixIt] = None,
        provenance: str = PROVEN_FOR_RANGE,
    ) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=severity or SYMBOLIC_RULES[code].default_severity,
            message=message,
            fixit=fixit,
            provenance=provenance,
        )


@dataclass(frozen=True)
class SymbolicRule:
    """Registry entry for one ``DF2xx`` diagnostic code."""

    code: str
    title: str
    default_severity: Severity
    check: Callable[[SymbolicRuleContext], Iterator[Diagnostic]]


SYMBOLIC_RULES: Dict[str, SymbolicRule] = {}

_SymbolicCheck = Callable[[SymbolicRuleContext], Iterator[Diagnostic]]


def symbolic_rule(
    code: str, title: str, severity: Severity
) -> Callable[[_SymbolicCheck], _SymbolicCheck]:
    def register(fn: _SymbolicCheck) -> _SymbolicCheck:
        if code in SYMBOLIC_RULES:  # pragma: no cover - registry misuse guard
            raise ValueError(f"duplicate symbolic lint rule code {code}")
        SYMBOLIC_RULES[code] = SymbolicRule(
            code=code, title=title, default_severity=severity, check=fn
        )
        return fn

    return register


@symbolic_rule(
    "DF200",
    "mapping cannot bind for any shape in the range",
    Severity.ERROR,
)
def _check_definitely_unbindable(
    ctx: SymbolicRuleContext,
) -> Iterator[Diagnostic]:
    """Binding fails for every concretization of the shape box.

    The abstract engine only raises when no member of the box can
    bind, so this failure is itself a range-wide theorem.
    """
    if ctx.failure is not None:
        yield ctx.diag(
            "DF200",
            f"{ctx.dataflow.name} on {ctx.box}: binding fails for every "
            f"shape in the box: {ctx.failure}",
        )


@symbolic_rule(
    "DF201",
    "per-PE tile footprint vs. L1 capacity over the shape range",
    Severity.ERROR,
)
def _check_l1_fit_symbolic(ctx: SymbolicRuleContext) -> Iterator[Diagnostic]:
    """L1 fit decided for the whole shape range by interval bounds.

    Lower bound above capacity: every member overflows (error). Upper
    bound within capacity: every member fits (info certificate).
    Straddling intervals warn with range-dependent provenance.
    """
    analysis = ctx.analysis
    if analysis is None or ctx.hw.l1_size is None:
        return
    req = analysis.l1_buffer_req
    l1 = ctx.hw.l1_size
    if req.lo > l1:
        yield ctx.diag(
            "DF201",
            f"{ctx.dataflow.name} on {ctx.box}: per-PE tile footprint is at "
            f"least {req.lo} B — it exceeds the L1 capacity of {l1} B for "
            f"every shape in the range",
            fixit=FixIt(
                f"shrink the innermost mapping sizes, or provision "
                f"l1_size >= {req.lo} B"
            ),
        )
    elif req.hi <= l1:
        yield ctx.diag(
            "DF201",
            f"{ctx.dataflow.name} on {ctx.box}: per-PE tile footprint "
            f"<= {req.hi} B fits the L1 capacity of {l1} B for every shape "
            f"in the range{ctx.range_note()}",
            severity=Severity.INFO,
        )
    else:
        yield ctx.diag(
            "DF201",
            f"{ctx.dataflow.name} on {ctx.box}: per-PE tile footprint spans "
            f"[{req.lo}, {req.hi}] B across the range; shapes near the upper "
            f"corner exceed the L1 capacity of {l1} B",
            severity=Severity.WARNING,
            provenance=RANGE_DEPENDENT,
        )


@symbolic_rule(
    "DF202",
    "PE utilization over the shape range",
    Severity.WARNING,
)
def _check_utilization_symbolic(
    ctx: SymbolicRuleContext,
) -> Iterator[Diagnostic]:
    """PE utilization bounded over the range: under-use or full, proven.

    Warns when even the optimistic corner under-utilizes; certifies
    full utilization when even the pessimistic corner is full.
    """
    analysis = ctx.analysis
    if analysis is None:
        return
    util = analysis.utilization
    if util.hi < _FULL_UTILIZATION:
        yield ctx.diag(
            "DF202",
            f"{ctx.dataflow.name} on {ctx.box}: PE utilization is at most "
            f"{100.0 * util.hi:.0f}% for every shape in the range "
            f"({analysis.num_pes} PEs)",
            fixit=FixIt(
                "align spatial sizes so the chunk count fills every fold, "
                "or map a larger dimension spatially"
            ),
        )
    elif util.lo >= _FULL_UTILIZATION:
        yield ctx.diag(
            "DF202",
            f"{ctx.dataflow.name} on {ctx.box}: full PE utilization proven "
            f"for every shape in the range{ctx.range_note()}",
            severity=Severity.INFO,
        )


@symbolic_rule(
    "DF203",
    "required NoC bandwidth vs. provisioned bandwidth over the shape range",
    Severity.WARNING,
)
def _check_noc_bandwidth_symbolic(
    ctx: SymbolicRuleContext,
) -> Iterator[Diagnostic]:
    """NoC demand vs. provisioned bandwidth over the whole range.

    Warns when the least demanding shape already exceeds the most
    generous provisioning; certifies fit when the peak demand fits the
    minimum provisioning.
    """
    analysis = ctx.analysis
    if analysis is None:
        return
    req = analysis.noc_bw_req_elems
    provisioned = ctx.hw.bandwidth
    if req.lo > provisioned.hi:
        yield ctx.diag(
            "DF203",
            f"{ctx.dataflow.name} on {ctx.box}: the mapping needs at least "
            f"{req.lo:.1f} elems/cycle of NoC bandwidth but at most "
            f"{provisioned.hi} is provisioned; the NoC throttles delivery "
            f"for every shape in the range",
            fixit=FixIt(
                f"provision NoC bandwidth >= {req.lo:.0f} elems/cycle, or "
                f"restructure the mapping for more reuse per delivered byte"
            ),
        )
    elif req.hi <= provisioned.lo:
        yield ctx.diag(
            "DF203",
            f"{ctx.dataflow.name} on {ctx.box}: peak NoC demand "
            f"<= {req.hi:.1f} elems/cycle fits the provisioned "
            f"{provisioned.lo} elems/cycle for every shape in the "
            f"range{ctx.range_note()}",
            severity=Severity.INFO,
        )


def lint_symbolic(
    dataflow: "Dataflow",
    box: "ShapeBox",
    hw: "HardwareBox",
    codes: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the ``DF2xx`` symbolic rules over a mapping and a shape box.

    One abstract-interpretation pass certifies (or refutes) each
    property for every layer in ``box`` and every accelerator in
    ``hw`` simultaneously. Results come back in rule-code order.
    """
    context = SymbolicRuleContext(dataflow=dataflow, box=box, hw=hw)
    selected = None if codes is None else set(codes)
    diagnostics: List[Diagnostic] = []
    for code in sorted(SYMBOLIC_RULES):
        if selected is not None and code not in selected:
            continue
        diagnostics.extend(SYMBOLIC_RULES[code].check(context))
    return LintReport.from_list(dataflow.name, diagnostics)
