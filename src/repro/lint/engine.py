"""The lint engine: select applicable rules and run them over a mapping.

Three entry points cover the three ways a mapping shows up:

- :func:`lint_directives` — the low-level pass over a raw directive
  list (possibly malformed — this is what construction validation uses);
- :func:`lint_dataflow` — lint a constructed
  :class:`~repro.dataflow.dataflow.Dataflow`, optionally against a
  :class:`~repro.model.layer.Layer` and an
  :class:`~repro.hardware.accelerator.Accelerator` (more context
  enables more rules);
- :func:`lint_text` — lint DSL text *leniently*: every syntax error
  becomes a diagnostic with a source span instead of aborting the parse.

:func:`static_errors` is the fast subset the DSE explorer and the
auto-tuner call: only *binding-equivalent* error rules run, so a
non-empty result guarantees :func:`~repro.engines.binding.bind_dataflow`
would raise for the same mapping — rejecting it statically can never
change which candidates survive a search.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic, LintReport, SourceSpan
from repro.lint.rules import RULES, RuleContext, required_pes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataflow.dataflow import Dataflow
    from repro.dataflow.directives import Directive
    from repro.hardware.accelerator import Accelerator
    from repro.model.layer import Layer

__all__ = [
    "construction_diagnostics",
    "explain_rule",
    "lint_dataflow",
    "lint_directives",
    "lint_text",
    "nearest_rule",
    "required_pes",
    "rule_families",
    "static_errors",
]

#: Provenance family per rule-code prefix, for ``explain_rule``.
_FAMILIES = {
    "DF0": "concrete heuristic/cost rules over one (mapping, layer, hardware)",
    "DF1": "coverage verdicts emitted from the repro.verify enumeration engine",
    "DF2": "symbolic range certificates from the abstract interpreter",
    "DF3": "certified communication classifications from repro.comm",
    "DF4": "equivalence/dominance findings from the repro.equiv canonical-form analyzer",
    "DF5": "certified capacity/roofline feasibility bounds from repro.capacity",
}


def nearest_rule(code: str) -> Optional[str]:
    """The registered rule code closest to ``code`` by edit distance.

    Used by error paths (``lint --explain`` on a typo) to suggest what
    the user probably meant. Returns ``None`` when no registry is
    loadable or the best match is further than half the code's length
    (suggesting something wildly unrelated helps nobody).
    """
    from repro.lint.rules import RULES as concrete
    from repro.lint.symbolic import SYMBOLIC_RULES

    code = code.upper()
    known = sorted(set(concrete) | set(SYMBOLIC_RULES))
    if not known:
        return None
    # Ties prefer the queried family (DF5xx typos suggest DF5xx rules).
    best = min(
        known,
        key=lambda candidate: (
            _edit_distance(code, candidate),
            candidate[:3] != code[:3],
            candidate,
        ),
    )
    if _edit_distance(code, best) > max(1, len(code) // 2):
        return None
    return best


def _edit_distance(a: str, b: str) -> int:
    """Plain Levenshtein distance (small strings, no need for bands)."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (char_a != char_b),
                )
            )
        previous = current
    return previous[-1]


def rule_families() -> Dict[str, str]:
    """Registered rule-code prefixes mapped to their provenance family.

    Exposed so CLI error paths can list the valid families (``DF0``,
    ``DF1``, ...) without enumerating every individual rule code.
    """
    return dict(_FAMILIES)


def explain_rule(code: str) -> str:
    """Human-readable explanation of one registered rule.

    Looks ``code`` up in both registries (concrete ``RULES`` and the
    symbolic ``SYMBOLIC_RULES``), and renders its title, severity,
    category flags, requirements, provenance family, and the check
    function's full docstring. Raises ``KeyError`` for unknown codes.
    """
    import inspect

    from repro.lint.rules import RULES as concrete

    code = code.upper()
    lines: List[str] = []
    rule = concrete.get(code)
    if rule is not None:
        category = []
        if rule.construction:
            category.append("construction-time")
        if rule.binding_equivalent:
            category.append("binding-equivalent")
        lines = [
            f"{rule.code}: {rule.title}",
            f"  severity:   {rule.default_severity}",
            f"  category:   {', '.join(category) or 'lint-time'}",
            f"  requires:   {', '.join(sorted(rule.requires)) or 'directives only'}",
        ]
        check = rule.check
    else:
        from repro.lint.symbolic import SYMBOLIC_RULES

        symbolic = SYMBOLIC_RULES.get(code)
        if symbolic is None:
            known = sorted(set(concrete) | set(SYMBOLIC_RULES))
            suggestion = nearest_rule(code)
            hint = f"did you mean {suggestion}? " if suggestion else ""
            raise KeyError(
                f"unknown lint rule {code!r}; {hint}"
                f"known rules: {', '.join(known)}"
            )
        lines = [
            f"{symbolic.code}: {symbolic.title}",
            f"  severity:   {symbolic.default_severity}",
            "  category:   symbolic (shape-range)",
            "  requires:   shape box + hardware box",
        ]
        check = symbolic.check
    family = _FAMILIES.get(code[:3], "unknown family")
    lines.append(f"  provenance: {family}")
    doc = inspect.getdoc(check)
    if doc:
        lines.append("")
        lines.extend(f"  {line}".rstrip() for line in doc.splitlines())
    return "\n".join(lines)


def _dedupe(diagnostics: "Sequence[Diagnostic]") -> List[Diagnostic]:
    """Collapse diagnostics that fire identically from more than one pass.

    The same finding can be produced twice — once by the construction
    pass (via scanner/``Dataflow.__post_init__`` replay, no source span)
    and once by the regular rule pass (span attached). Two diagnostics
    are duplicates when code, severity, message, and directive index all
    match; the span-carrying copy wins, and the survivor keeps the list
    position of the *first* occurrence so ordering stays stable.
    """
    keyed: Dict[Tuple[str, str, str, Optional[int]], int] = {}
    result: List[Diagnostic] = []
    for diagnostic in diagnostics:
        key = (
            diagnostic.code,
            str(diagnostic.severity),
            diagnostic.message,
            diagnostic.directive_index,
        )
        if key in keyed:
            index = keyed[key]
            if result[index].span is None and diagnostic.span is not None:
                result[index] = diagnostic
            continue
        keyed[key] = len(result)
        result.append(diagnostic)
    return result


def lint_directives(
    name: str,
    directives: "Sequence[Directive]",
    layer: "Optional[Layer]" = None,
    accelerator: "Optional[Accelerator]" = None,
    spans: "Optional[Sequence[Optional[SourceSpan]]]" = None,
    dataflow: object = None,
    codes: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Run every applicable rule over a raw directive list.

    Rules whose requirements (``layer``, ``accelerator``) are not met
    are skipped silently; ``codes`` restricts the pass to a subset of
    rule codes. Results come back in rule-code order (stable).
    """
    context = RuleContext(
        name=name,
        directives=tuple(directives),
        layer=layer,
        accelerator=accelerator,
        dataflow=dataflow,
        spans=tuple(spans) if spans is not None else None,
    )
    available = set()
    if layer is not None:
        available.add("layer")
    if accelerator is not None:
        available.add("accelerator")
    selected = None if codes is None else set(codes)
    diagnostics: List[Diagnostic] = []
    for code in sorted(RULES):
        rule = RULES[code]
        if selected is not None and code not in selected:
            continue
        if not rule.requires <= available:
            continue
        diagnostics.extend(rule.check(context))
    return diagnostics


def construction_diagnostics(
    name: str, directives: "Sequence[Directive]"
) -> List[Diagnostic]:
    """The structural checks ``Dataflow.__post_init__`` enforces.

    Only rules flagged ``construction`` run — they need no layer or
    hardware context and their errors make the object unbuildable.
    """
    codes = [code for code, rule in RULES.items() if rule.construction]
    return lint_directives(name, directives, codes=codes)


def lint_dataflow(
    dataflow: "Dataflow",
    layer: "Optional[Layer]" = None,
    accelerator: "Optional[Accelerator]" = None,
) -> LintReport:
    """Lint a constructed dataflow; more context enables more rules."""
    diagnostics = lint_directives(
        dataflow.name,
        dataflow.directives,
        layer=layer,
        accelerator=accelerator,
        dataflow=dataflow,
    )
    return LintReport.from_list(dataflow.name, diagnostics)


def lint_text(
    text: str,
    name: str = "parsed",
    source: Optional[str] = None,
    layer: "Optional[Layer]" = None,
    accelerator: "Optional[Accelerator]" = None,
) -> LintReport:
    """Lint DSL text leniently, with source spans on every diagnostic.

    Unlike :func:`~repro.dataflow.parser.parse_dataflow`, syntax errors
    do not abort: every unparsable line becomes a ``DF002`` diagnostic
    and the remaining well-formed directives are still checked by the
    semantic rules.
    """
    from repro.dataflow.parser import scan_dataflow

    scan = scan_dataflow(text, name=name)
    diagnostics = list(scan.diagnostics)
    diagnostics.extend(
        lint_directives(
            name,
            scan.directives,
            layer=layer,
            accelerator=accelerator,
            spans=scan.spans,
        )
    )
    return LintReport.from_list(name, _dedupe(diagnostics), source=source)


def static_errors(
    dataflow: "Dataflow",
    layer: "Layer",
    accelerator: "Optional[Accelerator]" = None,
) -> List[Diagnostic]:
    """Binding-equivalent errors only: the search-pruning fast path.

    Every diagnostic returned here corresponds to a condition under
    which :func:`~repro.engines.binding.bind_dataflow` raises, so a
    search loop may skip the candidate without evaluating it and still
    visit exactly the same set of valid designs.
    """
    codes = [code for code, rule in RULES.items() if rule.binding_equivalent]
    diagnostics = lint_directives(
        dataflow.name,
        dataflow.directives,
        layer=layer,
        accelerator=accelerator,
        dataflow=dataflow,
        codes=codes,
    )
    return [d for d in _dedupe(diagnostics) if d.is_error]
