"""Static mapping analyzer: lint dataflows before any cost-model run.

The paper's core claim is that data-centric directives make mapping
properties *statically analyzable*: validity, PE utilization, tile
footprint vs. buffer capacity, and required hardware support (Table 5)
can all be decided from the directives alone. This package turns those
decisions into structured diagnostics — each with a stable ``DF0xx``
code, a severity, the offending directive (with a source span when the
mapping came from DSL text), and an optional machine-applicable fix-it.

Entry points:

- :func:`lint_dataflow` — lint a :class:`~repro.dataflow.dataflow.Dataflow`
  object, optionally against a layer and an accelerator;
- :func:`lint_text` — lint DSL text leniently (collects *all* syntax
  errors instead of stopping at the first) with source locations;
- :func:`static_errors` — the fast, binding-equivalent error subset the
  DSE explorer and auto-tuner use to reject candidates before paying a
  cost-model evaluation.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    FixIt,
    LintReport,
    Severity,
    SourceSpan,
)
from repro.lint.engine import (
    construction_diagnostics,
    explain_rule,
    lint_dataflow,
    lint_directives,
    lint_text,
    nearest_rule,
    required_pes,
    rule_families,
    static_errors,
)
from repro.lint.rules import RULES, Rule
from repro.lint.symbolic import (
    SYMBOLIC_RULES,
    SymbolicRule,
    lint_symbolic,
)

__all__ = [
    "Diagnostic",
    "FixIt",
    "LintReport",
    "Severity",
    "SourceSpan",
    "RULES",
    "Rule",
    "SYMBOLIC_RULES",
    "SymbolicRule",
    "construction_diagnostics",
    "explain_rule",
    "lint_dataflow",
    "lint_directives",
    "lint_symbolic",
    "lint_text",
    "nearest_rule",
    "required_pes",
    "rule_families",
    "static_errors",
]
