"""Diagnostic objects: what the static mapping analyzer emits.

A :class:`Diagnostic` is one finding — a stable code (``DF001``…), a
severity, a human message, the offending directive (with a
:class:`SourceSpan` when the dataflow was parsed from DSL text), and an
optional machine-applicable :class:`FixIt`. A :class:`LintReport`
aggregates the findings for one mapping and renders them either as a
rustc-style text report or as JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` findings make a mapping invalid (construction raises, the
    CLI exits 1, and search tools reject the candidate); ``WARNING``
    findings waste hardware or bandwidth but still analyze; ``INFO``
    findings are observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SourceSpan:
    """Location of a directive in DSL source text (1-based columns)."""

    line: int
    column: int
    end_column: int
    source: str  # the full raw source line, without its newline

    def to_dict(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "column": self.column,
            "end_column": self.end_column,
            "source": self.source,
        }


@dataclass(frozen=True)
class FixIt:
    """A machine-applicable suggestion attached to a diagnostic.

    ``replacement`` — when present — is the full directive text that
    should replace the offending one.
    """

    description: str
    replacement: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {"description": self.description, "replacement": self.replacement}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static mapping analyzer.

    ``provenance`` records how the finding was established:
    ``"heuristic"`` for the shape/arithmetic pattern rules, ``"proven"``
    when it is backed by the iteration-space verifier
    (:mod:`repro.verify`) — i.e. the statement is a theorem about the
    clamped-tile schedule semantics, not a heuristic signal.
    """

    code: str
    severity: Severity
    message: str
    directive: Optional[str] = None  # str() of the offending directive
    directive_index: Optional[int] = None  # index into the directive list
    span: Optional[SourceSpan] = None
    fixit: Optional[FixIt] = None
    provenance: str = "heuristic"

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def headline(self) -> str:
        """One-line summary: ``error[DF005]: message``."""
        return f"{self.severity}[{self.code}]: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "directive": self.directive,
            "directive_index": self.directive_index,
            "provenance": self.provenance,
        }
        payload["span"] = self.span.to_dict() if self.span else None
        payload["fixit"] = self.fixit.to_dict() if self.fixit else None
        return payload


def _sort_key(diagnostic: Diagnostic) -> Tuple[int, int, str]:
    position = (
        diagnostic.span.line
        if diagnostic.span is not None
        else (diagnostic.directive_index if diagnostic.directive_index is not None else 1 << 30)
    )
    return (diagnostic.severity.rank, position, diagnostic.code)


@dataclass(frozen=True)
class LintReport:
    """All diagnostics for one mapping, with rendering helpers.

    ``subject`` is the dataflow name; ``source`` the file path when the
    mapping was linted from DSL text (used in location lines).
    """

    subject: str
    diagnostics: Tuple[Diagnostic, ...]
    source: Optional[str] = None

    @staticmethod
    def from_list(
        subject: str,
        diagnostics: List[Diagnostic],
        source: Optional[str] = None,
    ) -> "LintReport":
        return LintReport(
            subject=subject,
            diagnostics=tuple(sorted(diagnostics, key=_sort_key)),
            source=source,
        )

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def codes(self) -> List[str]:
        """Sorted distinct diagnostic codes present in the report."""
        return sorted({d.code for d in self.diagnostics})

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Rustc-style multi-diagnostic text report."""
        blocks = [self._render_one(d) for d in self.diagnostics]
        blocks.append(self._summary_line())
        return "\n".join(blocks)

    def _render_one(self, diagnostic: Diagnostic) -> str:
        lines = [diagnostic.headline()]
        origin = self.source or self.subject
        if diagnostic.span is not None:
            span = diagnostic.span
            lines.append(f"  --> {origin}:{span.line}:{span.column}")
            gutter = f"{span.line:>4}"
            pad = " " * len(gutter)
            lines.append(f"{pad} |")
            lines.append(f"{gutter} | {span.source}")
            carets = " " * (span.column - 1) + "^" * max(1, span.end_column - span.column)
            lines.append(f"{pad} | {carets}")
        elif diagnostic.directive is not None:
            lines.append(
                f"  --> {origin}: directive {diagnostic.directive_index}: "
                f"{diagnostic.directive}"
            )
        if diagnostic.provenance != "heuristic":
            lines.append(f"   = note: provenance: {diagnostic.provenance}")
        if diagnostic.fixit is not None:
            help_line = f"   = help: {diagnostic.fixit.description}"
            if diagnostic.fixit.replacement:
                help_line += f" -> `{diagnostic.fixit.replacement}`"
            lines.append(help_line)
        return "\n".join(lines) + "\n"

    def _summary_line(self) -> str:
        return (
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "source": self.source,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
