"""The lint rule registry: every ``DF0xx`` check over a directive list.

Each rule is a generator over a :class:`RuleContext` registered with the
:func:`rule` decorator. Rules declare what context they need (``layer``,
``accelerator``) and two orthogonal properties:

- ``construction`` rules run inside ``Dataflow.__post_init__`` and make
  construction raise (they need no layer or hardware);
- ``binding_equivalent`` rules are *sound* with respect to the cluster
  analysis engine: an error from one of them implies
  :func:`~repro.engines.binding.bind_dataflow` would raise for the same
  mapping, which lets the DSE explorer and the auto-tuner reject
  candidates statically without ever changing which designs survive.

The full catalog, with bad/fixed example pairs, lives in
``docs/mapping-lints.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    MapDirective,
    SizeLike,
    evaluate_size,
)
from repro.errors import DataflowError
from repro.lint.diagnostics import Diagnostic, FixIt, Severity, SourceSpan
from repro.tensors import dims as D
from repro.util.intmath import num_chunks, prod

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataflow.dataflow import Dataflow
    from repro.engines.binding import BoundDataflow
    from repro.engines.tensor_analysis import TensorAnalysis
    from repro.hardware.accelerator import Accelerator
    from repro.model.layer import Layer
    from repro.verify.result import VerifyResult

#: Dimensions along which a window may legitimately slide (halo reuse).
_SLIDING_DIMS = frozenset({D.Y, D.X})

#: Enumeration budget for coverage verification during linting (cell
#: updates). Deliberately below the verifier's default so `lint` stays
#: interactive; undecided mappings surface as DF103.
_LINT_VERIFY_BUDGET = 200_000


@dataclass(frozen=True)
class LevelView:
    """One cluster level of a (possibly invalid) raw directive list."""

    index: int
    maps: Tuple[Tuple[int, MapDirective], ...]  # (directive index, directive)
    cluster: "Optional[Tuple[int, ClusterDirective]]"  # the closing Cluster


def split_levels(directives: Tuple[Directive, ...]) -> Tuple[LevelView, ...]:
    """Group directives into cluster levels, tolerating malformed lists."""
    levels: List[LevelView] = []
    maps: List[Tuple[int, MapDirective]] = []
    for index, directive in enumerate(directives):
        if isinstance(directive, ClusterDirective):
            levels.append(
                LevelView(index=len(levels), maps=tuple(maps), cluster=(index, directive))
            )
            maps = []
        elif isinstance(directive, MapDirective):
            maps.append((index, directive))
    levels.append(LevelView(index=len(levels), maps=tuple(maps), cluster=None))
    return tuple(levels)


@dataclass
class RuleContext:
    """Everything a rule may inspect, with lazily computed derived state."""

    name: str
    directives: Tuple[Directive, ...]
    layer: "Optional[Layer]" = None
    accelerator: "Optional[Accelerator]" = None
    dataflow: object = None  # the Dataflow instance, when linting one
    spans: Optional[Tuple[Optional[SourceSpan], ...]] = None

    _bound: object = field(default=None, repr=False)
    _bound_tried: bool = field(default=False, repr=False)
    _tensors: object = field(default=None, repr=False)
    _tensors_tried: bool = field(default=False, repr=False)
    _coverage: object = field(default=None, repr=False)
    _coverage_tried: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def levels(self) -> Tuple[LevelView, ...]:
        return split_levels(self.directives)

    @property
    def map_entries(self) -> List[Tuple[int, MapDirective]]:
        return [
            (i, d) for i, d in enumerate(self.directives) if isinstance(d, MapDirective)
        ]

    @property
    def cluster_entries(self) -> List[Tuple[int, ClusterDirective]]:
        return [
            (i, d)
            for i, d in enumerate(self.directives)
            if isinstance(d, ClusterDirective)
        ]

    @property
    def dim_sizes(self) -> Optional[Dict[str, int]]:
        return self.layer.all_dim_sizes() if self.layer is not None else None

    @property
    def strides(self) -> Dict[str, int]:
        if self.layer is None:
            return {}
        return {D.Y: self.layer.stride[0], D.X: self.layer.stride[1]}

    def eval_size(self, value: SizeLike) -> Optional[int]:
        """Concrete value of a size/offset, or ``None`` when unknown.

        Mirrors the cluster analysis engine: symbolic expressions are
        evaluated against the layer's extents with ``St`` bound to the
        layer stride. Without a layer, only plain ints are known.
        """
        if isinstance(value, bool):
            return None
        if isinstance(value, int):
            return value
        if self.layer is None:
            return None
        try:
            return evaluate_size(value, self.dim_sizes, self.strides)
        except (DataflowError, ValueError):
            return None

    def eval_cluster_size(self, value: SizeLike) -> Optional[int]:
        """Concrete cluster size, evaluated exactly as binding does.

        Binding evaluates ``Cluster`` sizes without the stride mapping
        (``St`` resolves to 1), unlike map sizes/offsets.
        """
        if isinstance(value, bool):
            return None
        if isinstance(value, int):
            return value
        if self.layer is None:
            return None
        try:
            return evaluate_size(value, self.dim_sizes)
        except (DataflowError, ValueError):
            return None

    def expression_error(self, value: SizeLike) -> Optional[str]:
        """Why a size expression cannot be evaluated, or ``None`` if it can."""
        if isinstance(value, int) and not isinstance(value, bool):
            return None
        sizes = self.dim_sizes or {dim: 1 for dim in D.ALL_DIRECTIVE_DIMS}
        try:
            evaluate_size(value, sizes, self.strides or None)
        except (DataflowError, ValueError) as error:
            return str(error)
        return None

    @property
    def bound(self) -> "Optional[BoundDataflow]":
        """The mapping bound to layer + accelerator, or ``None``."""
        if self._bound_tried:
            return self._bound
        self._bound_tried = True
        if self.layer is None or self.accelerator is None:
            return None
        flow = self.dataflow
        if flow is None:
            try:
                from repro.dataflow.dataflow import Dataflow

                flow = Dataflow(name=self.name, directives=tuple(self.directives))
            except Exception:
                return None
        try:
            from repro.engines.binding import bind_dataflow

            self._bound = bind_dataflow(flow, self.layer, self.accelerator)
        except Exception:
            self._bound = None
        return self._bound

    @property
    def tensors(self) -> "Optional[TensorAnalysis]":
        if self._tensors_tried:
            return self._tensors
        self._tensors_tried = True
        if self.layer is None:
            return None
        mapped = {d.dim for _, d in self.map_entries}
        row_rep = "output" if D.YP in mapped else "input"
        col_rep = "output" if D.XP in mapped else "input"
        try:
            from repro.engines.tensor_analysis import analyze_tensors

            self._tensors = analyze_tensors(self.layer, row_rep, col_rep)
        except Exception:
            self._tensors = None
        return self._tensors

    @property
    def coverage(self) -> "Optional[VerifyResult]":
        """Iteration-space coverage verdict for this mapping, or ``None``.

        Accelerator-independent (the verifier binds against a synthetic
        accelerator that exactly fits the cluster hierarchy); requires a
        layer. Uses a reduced enumeration budget so linting stays fast —
        mappings the budget cannot decide surface as DF103.
        """
        if self._coverage_tried:
            return self._coverage
        self._coverage_tried = True
        if self.layer is None:
            return None
        flow = self.dataflow
        if flow is None:
            try:
                from repro.dataflow.dataflow import Dataflow

                flow = Dataflow(name=self.name, directives=tuple(self.directives))
            except Exception:
                return None
        try:
            from repro.verify import verify_dataflow

            self._coverage = verify_dataflow(
                flow, self.layer, budget=_LINT_VERIFY_BUDGET
            )
        except Exception:
            self._coverage = None
        return self._coverage

    # ------------------------------------------------------------------
    # Diagnostic construction
    # ------------------------------------------------------------------
    def diag(
        self,
        code: str,
        message: str,
        index: Optional[int] = None,
        fixit: Optional[FixIt] = None,
        severity: Optional[Severity] = None,
        provenance: str = "heuristic",
    ) -> Diagnostic:
        directive = None
        span = None
        if index is not None and 0 <= index < len(self.directives):
            directive = str(self.directives[index])
            if self.spans is not None and index < len(self.spans):
                span = self.spans[index]
        return Diagnostic(
            code=code,
            severity=severity or RULES[code].default_severity,
            message=message,
            directive=directive,
            directive_index=index,
            span=span,
            fixit=fixit,
            provenance=provenance,
        )


@dataclass(frozen=True)
class Rule:
    """Registry entry for one diagnostic code."""

    code: str
    title: str
    default_severity: Severity
    requires: frozenset
    construction: bool
    binding_equivalent: bool
    check: Callable[[RuleContext], Iterator[Diagnostic]]


RULES: Dict[str, Rule] = {}


_RuleCheck = Callable[[RuleContext], Iterator[Diagnostic]]


def rule(
    code: str,
    title: str,
    severity: Severity,
    requires: Tuple[str, ...] = (),
    construction: bool = False,
    binding_equivalent: bool = False,
) -> Callable[[_RuleCheck], _RuleCheck]:
    def register(fn: _RuleCheck) -> _RuleCheck:
        if code in RULES:  # pragma: no cover - registry misuse guard
            raise ValueError(f"duplicate lint rule code {code}")
        RULES[code] = Rule(
            code=code,
            title=title,
            default_severity=severity,
            requires=frozenset(requires),
            construction=construction,
            binding_equivalent=binding_equivalent,
            check=fn,
        )
        return fn

    return register


def required_pes(dataflow: "Dataflow", layer: "Layer") -> int:
    """PEs the cluster hierarchy needs, exactly as binding computes it.

    Raises :class:`~repro.errors.DataflowError` (as binding would) when a
    cluster size cannot be evaluated or is non-positive.
    """
    from repro.errors import BindingError

    full_sizes = layer.all_dim_sizes()
    sizes = []
    for directive in dataflow.directives:
        if isinstance(directive, ClusterDirective):
            size = evaluate_size(directive.size, full_sizes)
            if size < 1:
                raise BindingError(
                    f"{dataflow.name} on {layer.name}: cluster size {size} < 1"
                )
            sizes.append(size)
    return prod(sizes)


# ======================================================================
# Construction-time structural rules (DF001-DF004)
# ======================================================================
@rule(
    "DF001",
    "dataflow has no directives",
    Severity.ERROR,
    construction=True,
)
def _check_empty(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A dataflow with no directives describes no schedule at all.

    Construction-time: ``Dataflow(...)`` raises, so no downstream engine
    ever sees an empty mapping.
    """
    if not ctx.directives:
        yield ctx.diag("DF001", f"{ctx.name}: a dataflow needs at least one directive")


@rule(
    "DF002",
    "unparsable or unknown directive",
    Severity.ERROR,
    construction=True,
)
def _check_directive_kinds(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Every directive must be a map or a Cluster.

    Construction-time: anything else (a typo'd kind, a raw string, a
    foreign object) is rejected before it can corrupt level splitting.
    """
    for index, directive in enumerate(ctx.directives):
        if not isinstance(directive, (MapDirective, ClusterDirective)):
            yield ctx.diag(
                "DF002", f"{ctx.name}: unexpected directive {directive!r}", index=index
            )


@rule(
    "DF003",
    "Cluster directive not followed by maps",
    Severity.ERROR,
    construction=True,
)
def _check_trailing_cluster(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A ``Cluster`` opens a sub-level, so it cannot be the last directive.

    Construction-time: a trailing Cluster would create a level with no
    maps — sub-units with nothing to execute.
    """
    if ctx.directives and isinstance(ctx.directives[-1], ClusterDirective):
        yield ctx.diag(
            "DF003",
            f"{ctx.name}: a Cluster directive must be followed by maps",
            index=len(ctx.directives) - 1,
            fixit=FixIt("add map directives after the Cluster, or remove it"),
        )


@rule(
    "DF004",
    "mixed input/output coordinate systems on one axis",
    Severity.ERROR,
    construction=True,
)
def _check_coordinate_mixing(ctx: RuleContext) -> Iterator[Diagnostic]:
    """One axis must use either input (Y/X) or output (Y'/X') coordinates.

    Construction-time: mixing both on the same axis makes the tensor
    access relations ambiguous — there is no single row/column
    representation the analysis engines could bind.
    """
    for in_dim, out_dim in ((D.Y, D.YP), (D.X, D.XP)):
        first_style: Optional[str] = None
        for index, directive in ctx.map_entries:
            if directive.dim not in (in_dim, out_dim):
                continue
            if first_style is None:
                first_style = directive.dim
            elif directive.dim != first_style:
                yield ctx.diag(
                    "DF004",
                    f"{ctx.name}: directives mix {in_dim} and {out_dim}; "
                    f"pick one coordinate system per axis",
                    index=index,
                    fixit=FixIt(
                        f"rewrite every {directive.dim} directive in terms of "
                        f"{first_style} (or vice versa)"
                    ),
                )
                break


# ======================================================================
# Structural rules checked at lint time (DF005-DF006)
# ======================================================================
@rule(
    "DF005",
    "dimension mapped more than once in a cluster level",
    Severity.ERROR,
    binding_equivalent=True,
)
def _check_duplicate_dims(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A dimension may appear at most once per cluster level.

    Binding-equivalent: the cluster analysis engine raises on duplicate
    dimensions within a level, so an error here implies the mapping
    cannot bind at all.
    """
    for level in ctx.levels:
        seen: Dict[str, int] = {}
        for index, directive in level.maps:
            if directive.dim in seen:
                yield ctx.diag(
                    "DF005",
                    f"{ctx.name}: dimension {directive.dim} mapped twice in "
                    f"cluster level {level.index}",
                    index=index,
                    fixit=FixIt(f"remove or merge one of the {directive.dim} maps"),
                )
            else:
                seen[directive.dim] = index


@rule(
    "DF006",
    "layer dimension never mapped",
    Severity.INFO,
    requires=("layer",),
)
def _check_dimension_coverage(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Informational: a used layer dimension is never mapped.

    Unmapped dimensions are handled as one full-size chunk per step —
    legal, but often an oversight that forfeits tiling freedom along
    that dimension.
    """
    mapped = {D.base_dim(d.dim) for _, d in ctx.map_entries}
    for dim in D.CANONICAL_DIMS:
        extent = ctx.layer.dims.get(dim, 1)
        if extent <= 1 or dim not in ctx.layer.operator.used_dims:
            continue
        if dim not in mapped:
            yield ctx.diag(
                "DF006",
                f"{ctx.name}: dimension {dim} (extent {extent}) is never mapped; "
                f"it is handled as a single full-size chunk per step",
            )


# ======================================================================
# Cluster shape vs. the PE array (DF007-DF009)
# ======================================================================
@rule(
    "DF007",
    "cluster hierarchy needs more PEs than exist",
    Severity.ERROR,
    requires=("accelerator",),
    binding_equivalent=True,
)
def _check_cluster_fits(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The product of cluster sizes must not exceed the PE count.

    Binding-equivalent: binding raises when the hierarchy needs more
    sub-units than the accelerator provides.
    """
    sizes = [ctx.eval_cluster_size(c.size) for _, c in ctx.cluster_entries]
    if not sizes or any(s is None for s in sizes) or any(s < 1 for s in sizes):
        return  # symbolic without a layer, or reported by DF011/DF012
    needed = prod(sizes)
    if needed > ctx.accelerator.num_pes:
        index = ctx.cluster_entries[-1][0]
        yield ctx.diag(
            "DF007",
            f"{ctx.name}: cluster hierarchy needs {needed} PEs but only "
            f"{ctx.accelerator.num_pes} exist",
            index=index,
            fixit=FixIt(
                f"shrink the Cluster sizes so their product is <= "
                f"{ctx.accelerator.num_pes}, or provision more PEs"
            ),
        )


@rule(
    "DF008",
    "PE array not divisible by the cluster hierarchy",
    Severity.WARNING,
    requires=("accelerator",),
)
def _check_cluster_divisibility(ctx: RuleContext) -> Iterator[Diagnostic]:
    """PEs that do not divide into whole clusters sit permanently idle.

    Heuristic cost warning: the mapping still binds and runs, but the
    remainder PEs never receive work.
    """
    sizes = [ctx.eval_cluster_size(c.size) for _, c in ctx.cluster_entries]
    if not sizes or any(s is None or s < 1 for s in sizes):
        return
    needed = prod(sizes)
    num_pes = ctx.accelerator.num_pes
    if needed > num_pes or num_pes % needed == 0:
        return
    idle = num_pes - (num_pes // needed) * needed
    index = ctx.cluster_entries[-1][0]
    yield ctx.diag(
        "DF008",
        f"{ctx.name}: {num_pes} PEs do not divide into {needed}-PE clusters; "
        f"{idle} PEs ({100.0 * idle / num_pes:.0f}%) are permanently idle",
        index=index,
        fixit=FixIt(
            f"use {(num_pes // needed) * needed} PEs, or a cluster size "
            f"dividing {num_pes}"
        ),
    )


def _suggest_spatial_size(extent: int, size: int, width: int) -> Optional[int]:
    """A non-overlapping spatial size whose chunk count fills every fold."""
    candidates = []
    for candidate in range(size - 1, 0, -1):
        if num_chunks(extent, candidate, candidate) % width == 0:
            candidates.append(candidate)
            break
    for candidate in range(size + 1, extent + 1):
        if num_chunks(extent, candidate, candidate) % width == 0:
            candidates.append(candidate)
            break
    if not candidates:
        return None
    return min(candidates, key=lambda c: (abs(c - size), c))


@rule(
    "DF009",
    "spatial mapping under-utilizes the PEs",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_spatial_utilization(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Spatial chunk counts that do not fill every fold waste PEs.

    Heuristic: computed from the bound schedule's average active
    sub-units; the fix-it proposes a nearby size whose chunk count
    fills each fold exactly.
    """
    bound = ctx.bound
    if bound is None:
        return
    for level, view in zip(bound.levels, ctx.levels):
        if level.width <= 1 or level.spatial_chunks <= 1:
            continue
        utilization = level.avg_active / level.width
        if utilization >= 0.999:
            continue
        spatial_bound = [d for d in level.directives if d.spatial and d.chunks > 1]
        spatial_view = [(i, d) for i, d in view.maps if d.spatial]
        index = spatial_view[0][0] if spatial_view else None
        fixit = None
        if len(spatial_bound) == 1 and spatial_bound[0].offset == spatial_bound[0].size:
            bd = spatial_bound[0]
            extent = level.local_sizes.get(bd.dim, 0)
            if extent > 1:
                suggestion = _suggest_spatial_size(extent, bd.size, level.width)
                if suggestion is not None and suggestion != bd.size:
                    kind = "SpatialMap"
                    fixit = FixIt(
                        f"shrink SpatialMap size {bd.size} -> {suggestion} so the "
                        f"{num_chunks(extent, suggestion, suggestion)} chunks fill "
                        f"every {level.width}-wide fold",
                        replacement=f"{kind}({suggestion},{suggestion}) {bd.dim}",
                    )
        yield ctx.diag(
            "DF009",
            f"{ctx.name}: level {level.index} spreads {level.spatial_chunks} "
            f"spatial chunks over {level.width} sub-units in {level.folds} fold(s); "
            f"average PE utilization is {100.0 * utilization:.0f}%",
            index=index,
            fixit=fixit,
        )


# ======================================================================
# Per-directive size/offset checks (DF010-DF012, DF017)
# ======================================================================
@rule(
    "DF010",
    "overlapping chunks on a non-sliding dimension",
    Severity.WARNING,
)
def _check_halo_misuse(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Overlapping chunks (offset < size) only pay off on sliding dims.

    On Y/X the halo is convolutional reuse; on any other dimension it
    re-fetches the same indices for nothing. Coverage-refutable: the
    verifier refutes the canonical triggers with counterexamples (see
    ``repro.verify.audit``), though benign clamped inner-level variants
    exist — hence a warning, not an error.
    """
    for index, directive in ctx.map_entries:
        if directive.dim in _SLIDING_DIMS:
            continue  # halo on Y/X is convolutional reuse, the point of it
        size = ctx.eval_size(directive.size)
        offset = ctx.eval_size(directive.offset)
        if size is None or offset is None or size <= 0 or offset <= 0:
            continue
        if offset < size:
            yield ctx.diag(
                "DF010",
                f"{ctx.name}: {directive.kind}({size},{offset}) {directive.dim} "
                f"overlaps chunks (offset < size) on non-sliding dimension "
                f"{directive.dim}, re-fetching the same indices without "
                f"convolutional reuse",
                index=index,
                fixit=FixIt(
                    f"make the offset equal to the size",
                    replacement=f"{directive.kind}({directive.size},{directive.size}) "
                    f"{directive.dim}",
                ),
            )


@rule(
    "DF011",
    "non-positive mapping or cluster size",
    Severity.ERROR,
    binding_equivalent=True,
)
def _check_positive_sizes(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Sizes and offsets must evaluate to >= 1.

    Binding-equivalent: the engine rejects non-positive chunk sizes and
    offsets for the same mapping.
    """
    for index, directive in ctx.map_entries:
        size = ctx.eval_size(directive.size)
        offset = ctx.eval_size(directive.offset)
        if size is not None and size < 1:
            yield ctx.diag(
                "DF011",
                f"{ctx.name}: {directive.kind} size on {directive.dim} "
                f"evaluates to {size}; sizes must be >= 1",
                index=index,
            )
        if offset is not None and offset < 1:
            yield ctx.diag(
                "DF011",
                f"{ctx.name}: {directive.kind} offset on {directive.dim} "
                f"evaluates to {offset}; offsets must be >= 1",
                index=index,
            )
    for index, directive in ctx.cluster_entries:
        size = ctx.eval_cluster_size(directive.size)
        if size is not None and size < 1:
            yield ctx.diag(
                "DF011",
                f"{ctx.name}: cluster size {size} < 1",
                index=index,
            )


@rule(
    "DF012",
    "unresolvable size expression",
    Severity.ERROR,
    binding_equivalent=True,
)
def _check_size_expressions(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Symbolic sizes (``Sz``, ``St`` expressions) must be resolvable.

    Binding-equivalent: an expression that cannot be evaluated against
    the layer's extents makes binding raise.
    """
    for index, directive in enumerate(ctx.directives):
        if isinstance(directive, MapDirective):
            values = (("size", directive.size), ("offset", directive.offset))
        elif isinstance(directive, ClusterDirective):
            values = (("size", directive.size),)
        else:
            continue
        for role, value in values:
            reason = ctx.expression_error(value)
            if reason is not None:
                yield ctx.diag(
                    "DF012",
                    f"{ctx.name}: cannot evaluate the {role} of directive "
                    f"{index} ({directive}): {reason}",
                    index=index,
                )


@rule(
    "DF017",
    "offset larger than size skips indices",
    Severity.WARNING,
)
def _check_coverage_gaps(ctx: RuleContext) -> Iterator[Diagnostic]:
    """An offset larger than the size skips indices on non-sliding dims.

    Part of the computation is then never mapped. Coverage-refutable:
    the verifier refutes the canonical triggers with concrete missed
    coordinates (see ``repro.verify.audit``).
    """
    for index, directive in ctx.map_entries:
        if directive.dim in _SLIDING_DIMS:
            continue  # strided windows legitimately skip input pixels
        size = ctx.eval_size(directive.size)
        offset = ctx.eval_size(directive.offset)
        if size is None or offset is None or size < 1 or offset < 1:
            continue
        extent = (
            ctx.layer.dim_size(directive.dim) if ctx.layer is not None else None
        )
        if offset > size and (extent is None or extent > size):
            yield ctx.diag(
                "DF017",
                f"{ctx.name}: {directive.kind}({size},{offset}) {directive.dim} "
                f"skips {offset - size} of every {offset} indices of "
                f"{directive.dim}; part of the computation is never mapped",
                index=index,
                fixit=FixIt(
                    "make the offset equal to the size to cover every index",
                    replacement=f"{directive.kind}({directive.size},{directive.size}) "
                    f"{directive.dim}",
                ),
            )


# ======================================================================
# Buffer capacity (DF013-DF014)
# ======================================================================
@rule(
    "DF013",
    "per-PE tile footprint exceeds L1 capacity",
    Severity.ERROR,
    requires=("layer", "accelerator"),
)
def _check_l1_footprint(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The innermost tile (double-buffered) must fit the per-PE L1.

    Heuristic capacity check against the bound chunk sizes and tensor
    volumes; an overflow means the mapping cannot be buffered as
    scheduled.
    """
    if ctx.accelerator.l1_size is None:
        return
    bound, tensors = ctx.bound, ctx.tensors
    if bound is None or tensors is None:
        return
    buffering = 2 if ctx.accelerator.double_buffered else 1
    chunk = bound.innermost().chunk_sizes()
    footprint = (
        buffering
        * sum(info.volume(chunk) for info in tensors.tensors)
        * ctx.accelerator.element_bytes
    )
    if footprint > ctx.accelerator.l1_size:
        yield ctx.diag(
            "DF013",
            f"{ctx.name}: per-PE tile footprint {footprint} B "
            f"({'double' if buffering == 2 else 'single'}-buffered) exceeds the "
            f"L1 capacity of {ctx.accelerator.l1_size} B",
            fixit=FixIt(
                f"shrink the innermost mapping sizes, or provision "
                f"l1_size >= {footprint} B"
            ),
        )


@rule(
    "DF014",
    "working set exceeds L2 capacity",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_l2_footprint(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The level-0 working set should fit the shared L2.

    Heuristic capacity warning: an overflow does not break the
    schedule, but every excess byte spills to DRAM traffic.
    """
    if ctx.accelerator.l2_size is None:
        return
    bound, tensors = ctx.bound, ctx.tensors
    if bound is None or tensors is None:
        return
    try:
        from repro.engines.reuse import analyze_level_reuse

        reuse = analyze_level_reuse(bound.levels[0], tensors)
    except Exception:
        return
    buffering = 2 if ctx.accelerator.double_buffered else 1
    footprint = (
        buffering
        * int(
            sum(
                reuse.unique_chunk_volumes[t.name] / max(t.density, 1e-12)
                for t in tensors.tensors
            )
        )
        * ctx.accelerator.element_bytes
    )
    if footprint > ctx.accelerator.l2_size:
        yield ctx.diag(
            "DF014",
            f"{ctx.name}: level-0 working set {footprint} B exceeds the L2 "
            f"capacity of {ctx.accelerator.l2_size} B; traffic will spill "
            f"to DRAM",
            fixit=FixIt(
                f"shrink the level-0 mapping sizes, or provision "
                f"l2_size >= {footprint} B"
            ),
        )


# ======================================================================
# Hardware reuse support, the paper's Table 5 (DF015-DF016, DF018)
# ======================================================================
@rule(
    "DF015",
    "spatial reduction required but unsupported",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_spatial_reduction_support(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Spatial reduction without a reduction tree costs buffer round-trips.

    The paper's Table 5 cost warning: when every output axis shift is
    zero across a level's sub-units, partial sums must be combined; a
    machine without spatial-reduction hardware serializes them through
    the upper buffer. The concurrency *hazard* version of this (an
    actual write-write race) is DF300.
    """
    if ctx.accelerator.spatial_reduction:
        return
    bound, tensors = ctx.bound, ctx.tensors
    if bound is None or tensors is None:
        return
    output = tensors.output
    for level, view in zip(bound.levels, ctx.levels):
        if level.width <= 1 or level.spatial_chunks <= 1:
            continue
        if all(abs(axis.shift(level.spatial_offsets)) == 0 for axis in output.axes):
            spatial_view = [(i, d) for i, d in view.maps if d.spatial]
            yield ctx.diag(
                "DF015",
                f"{ctx.name}: level {level.index} reduces partial sums across "
                f"{level.width} sub-units, but the accelerator has no "
                f"spatial-reduction hardware; every partial sum round-trips "
                f"through the upper buffer (Table 5)",
                index=spatial_view[0][0] if spatial_view else None,
            )


@rule(
    "DF016",
    "spatial multicast required but unsupported",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_multicast_support(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Broadcast-identical tensors on a unicast NoC duplicate every fetch.

    The paper's Table 5 cost warning, based on zero axis shifts across
    sub-units. DF301 is the certified-classifier version carrying the
    exact duplication factor.
    """
    if ctx.accelerator.noc.multicast:
        return
    bound, tensors = ctx.bound, ctx.tensors
    if bound is None or tensors is None:
        return
    for level, view in zip(bound.levels, ctx.levels):
        if level.width <= 1 or level.spatial_chunks <= 1:
            continue
        broadcast = [
            t.name
            for t in tensors.tensors
            if not t.is_output
            and all(abs(axis.shift(level.spatial_offsets)) == 0 for axis in t.axes)
        ]
        if broadcast:
            spatial_view = [(i, d) for i, d in view.maps if d.spatial]
            yield ctx.diag(
                "DF016",
                f"{ctx.name}: tensor(s) {', '.join(broadcast)} are identical "
                f"across the {level.width} sub-units of level {level.index}, but "
                f"the NoC has no multicast; each fetch is duplicated per "
                f"receiver (Table 5)",
                index=spatial_view[0][0] if spatial_view else None,
            )


@rule(
    "DF018",
    "level distributes nothing across its sub-units",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_idle_levels(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A level whose joint spatial distribution has one chunk wastes PEs.

    All sub-units but one execute nothing; the per-directive variant
    (one degenerate SpatialMap among productive ones) is DF302.
    """
    bound = ctx.bound
    if bound is None:
        return
    for level, view in zip(bound.levels, ctx.levels):
        if level.width <= 1 or level.spatial_chunks > 1:
            continue
        index = view.maps[0][0] if view.maps else None
        yield ctx.diag(
            "DF018",
            f"{ctx.name}: level {level.index} maps only a single spatial chunk "
            f"across its {level.width} sub-units; {level.width - 1} of them do "
            f"no useful work",
            index=index,
            fixit=FixIt("add a SpatialMap over a dimension with extent > 1"),
        )


# ======================================================================
# Iteration-space coverage, backed by the verifier (DF101-DF103)
#
# Unlike the DF0xx pattern rules, these come from repro.verify: DF101 is
# a *theorem* about the schedule (hence provenance "proven" and a
# concrete counterexample coordinate in the message), DF102 the positive
# certificate, DF103 the honest "ran out of budget" signal.
# ======================================================================
@rule(
    "DF101",
    "mapping does not cover the compute space exactly once",
    Severity.ERROR,
    requires=("layer",),
)
def _check_coverage_refuted(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The verifier found a MAC executed zero or multiple times.

    Provenance "proven": the diagnostic carries a concrete
    counterexample coordinate from ``repro.verify``.
    """
    result = ctx.coverage
    if result is None:
        return
    from repro.verify.result import Verdict

    if result.verdict is not Verdict.REFUTED or result.counterexample is None:
        return
    yield ctx.diag(
        "DF101",
        f"{ctx.name}: coverage refuted on {result.layer_name}: "
        f"{result.counterexample.describe()}",
        provenance="proven",
        fixit=FixIt(
            "align sizes/offsets so chunks tile each dimension exactly "
            "(offset == size, or offset == stride * outputs-per-chunk on "
            "sliding dims)"
        ),
    )


@rule(
    "DF102",
    "mapping proven to cover the compute space exactly once",
    Severity.INFO,
    requires=("layer",),
)
def _check_coverage_proven(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Positive certificate: every MAC executes exactly once.

    Provenance "proven": emitted directly from a ``repro.verify``
    PROVEN verdict (decomposition or enumeration).
    """
    result = ctx.coverage
    if result is None:
        return
    from repro.verify.result import Verdict

    if result.verdict is not Verdict.PROVEN:
        return
    yield ctx.diag(
        "DF102",
        f"{ctx.name}: every one of the {result.total_macs} MACs on "
        f"{result.layer_name} is executed exactly once ({result.method})",
        provenance="proven",
    )


@rule(
    "DF103",
    "coverage verification undecided within budget",
    Severity.INFO,
    requires=("layer",),
)
def _check_coverage_undecided(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The lint-time verification budget ran out before a verdict.

    The honest "don't know" signal: neither DF101 nor DF102 applies;
    run ``repro verify`` with a larger budget for a decision.
    """
    result = ctx.coverage
    if result is None:
        return
    from repro.verify.result import Verdict

    if result.verdict is not Verdict.UNDECIDED:
        return
    yield ctx.diag(
        "DF103",
        f"{ctx.name}: coverage on {result.layer_name} undecided: "
        f"{result.message or 'enumeration budget exhausted'}",
    )


# ======================================================================
# Spatial communication & concurrency, backed by repro.comm (DF300-DF303)
#
# These rules read the *certified* communication classification (the
# Table 2 closed form, differentially validated against brute-force PE
# access-set enumeration) instead of re-deriving shift patterns, and
# carry its provenance. DF015/DF016 remain as the Table-5 *cost*
# warnings; DF300/DF301 are the hazard/blow-up statements with exact
# fan-in / duplication numbers.
# ======================================================================
def _comm_levels(ctx: RuleContext) -> "List[Tuple[object, LevelView, object]]":
    """(bound level, level view, LevelComm) triples, or ``[]`` if unbound."""
    bound, tensors = ctx.bound, ctx.tensors
    if bound is None or tensors is None:
        return []
    try:
        from repro.comm.classify import classify_level

        return [
            (level, view, classify_level(level, tensors))
            for level, view in zip(bound.levels, ctx.levels)
        ]
    except Exception:
        return []


def _first_spatial_index(view: LevelView) -> Optional[int]:
    spatial = [(i, d) for i, d in view.maps if d.spatial]
    return spatial[0][0] if spatial else None


@rule(
    "DF300",
    "write-write race: spatial reduction on hardware without a reduction tree",
    Severity.ERROR,
    requires=("layer", "accelerator"),
)
def _check_write_race(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Concurrent sub-units write the same output elements with nothing
    to combine them.

    The communication classifier certifies a level as ``REDUCTION``
    when its spatial offsets leave every (or some, for partial
    overlaps) output axis shared across concurrently active sub-units:
    a reduction-carried dimension is spatially mapped. On hardware
    whose ``reduction_support`` capability is off, those concurrent
    partial-sum writes race (or silently serialize) — a correctness
    hazard, not a cost trade-off, hence an error where DF015 only
    warns. Fix by mapping the reduction dimension temporally or by
    choosing reduction-capable hardware.
    """
    if ctx.accelerator.reduction_support:
        return
    from repro.comm.classify import STATIC_PROVENANCE

    for level, view, comm in _comm_levels(ctx):
        if not getattr(comm, "requires_reduction", False):
            continue
        output = comm.output_comm
        exact = "all" if output.exact_overlap else "some"
        yield ctx.diag(
            "DF300",
            f"{ctx.name}: level {comm.index} spatially maps a reduction-carried "
            f"dimension — {output.fan_in} concurrent sub-units write {exact} "
            f"elements of {output.tensor} ({output.degree_formula}), but the "
            f"hardware has no reduction tree: a write-write race",
            index=_first_spatial_index(view),
            provenance=STATIC_PROVENANCE,
            fixit=FixIt(
                "map the reduction-carried dimension with TemporalMap (or pick "
                "hardware with reduction_support)"
            ),
        )


@rule(
    "DF301",
    "multicast required on unicast-only hardware",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_multicast_duplication(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Each multicast-classified tensor is fetched once per receiver.

    When the classifier certifies a tensor as ``MULTICAST`` (identical
    across every concurrently active sub-unit) but the hardware's
    ``multicast_support`` capability is off, the NoC delivers one copy
    per receiver: the statically computed duplication factor is exactly
    the multicast fan-out. A cost blow-up, not a hazard — hence a
    warning, with the factor in the message.
    """
    if ctx.accelerator.multicast_support:
        return
    from repro.comm.classify import STATIC_PROVENANCE, CommPattern

    for level, view, comm in _comm_levels(ctx):
        factors = [
            (t.tensor, t.fan_out)
            for t in getattr(comm, "tensors", ())
            if t.pattern is CommPattern.MULTICAST
        ]
        if not factors:
            continue
        detail = ", ".join(f"{name} x{factor}" for name, factor in factors)
        yield ctx.diag(
            "DF301",
            f"{ctx.name}: level {comm.index} multicasts {detail} but the NoC is "
            f"unicast-only; every delivery is duplicated per receiver",
            index=_first_spatial_index(view),
            provenance=STATIC_PROVENANCE,
        )


@rule(
    "DF302",
    "degenerate SpatialMap: fan-out 1, no spatial reuse",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_degenerate_spatial_map(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A SpatialMap whose dimension yields a single chunk distributes
    nothing.

    The directive spends the level's spatial slot on a dimension with
    one chunk (extent <= size): fan-out 1, zero inter-PE reuse, while a
    TemporalMap of the same size is semantically identical and keeps
    the intent honest. The whole-level version (nothing distributed at
    all) is DF018; this rule fires per directive when *another* mapped
    dimension still carries the distribution.
    """
    bound = ctx.bound
    if bound is None:
        return
    from repro.comm.classify import STATIC_PROVENANCE

    for level, view in zip(bound.levels, ctx.levels):
        if level.width <= 1 or level.spatial_chunks <= 1:
            continue  # whole-level degeneracy is DF018's business
        degenerate_dims = {
            d.dim for d in level.directives if d.spatial and d.chunks <= 1
        }
        for index, directive in view.maps:
            if not directive.spatial or directive.dim not in degenerate_dims:
                continue
            size = ctx.eval_size(directive.size)
            offset = ctx.eval_size(directive.offset)
            replacement = None
            if size is not None and offset is not None:
                replacement = f"TemporalMap({size},{offset}) {directive.dim}"
            yield ctx.diag(
                "DF302",
                f"{ctx.name}: SpatialMap on {directive.dim} at level "
                f"{level.index} produces a single chunk (fan-out 1): nothing "
                f"is distributed along it",
                index=index,
                provenance=STATIC_PROVENANCE,
                fixit=FixIt(
                    f"map {directive.dim} temporally; the spatial slot adds "
                    f"nothing here",
                    replacement=replacement,
                ),
            )


@rule(
    "DF303",
    "forwarding chain longer than the PE row",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_forwarding_chain(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A store-and-forward chain should fit one physical PE row.

    ``FORWARDING``-classified tensors (partial overlaps, offset <
    size) ride neighbor-to-neighbor links; a chain spanning more
    sub-units than the PE array's row length (``isqrt(num_pes)`` for
    the square arrays the cost model assumes) must hop across rows,
    where nearest-neighbor forwarding no longer exists.
    """
    import math as _math

    from repro.comm.classify import STATIC_PROVENANCE, CommPattern

    row = max(1, _math.isqrt(ctx.accelerator.num_pes))
    for level, view, comm in _comm_levels(ctx):
        chains = [
            t
            for t in getattr(comm, "tensors", ())
            if t.pattern is CommPattern.FORWARDING and t.chain_length > row
        ]
        for tensor in chains:
            yield ctx.diag(
                "DF303",
                f"{ctx.name}: level {comm.index} forwards {tensor.tensor} along "
                f"a {tensor.chain_length}-unit chain, longer than the "
                f"{row}-PE row of a {ctx.accelerator.num_pes}-PE array",
                index=_first_spatial_index(view),
                provenance=STATIC_PROVENANCE,
                fixit=FixIt(
                    f"shrink the spatial extent so the chain fits {row} "
                    f"sub-units, or tile it with a Cluster"
                ),
            )


# ======================================================================
# Mapping equivalence & dominance, backed by repro.equiv (DF400-DF403)
#
# These rules read the canonical-form analyzer: exact findings (inert
# directives, commuting spatial slots) carry the equivalence provenance
# and exact fix-its; DF402 compares symmetry orbits against the library
# catalog; DF403 reports interval-certified dominance by a library
# mapping. None are construction or binding-equivalent rules — they
# never run on the engines' hot paths.
# ======================================================================
def _equiv_dataflow(ctx: RuleContext) -> "Optional[Dataflow]":
    """The mapping under lint as a ``Dataflow``, or ``None``."""
    if ctx.dataflow is not None:
        return ctx.dataflow  # type: ignore[return-value]
    try:
        from repro.dataflow.dataflow import Dataflow

        return Dataflow(name=ctx.name, directives=tuple(ctx.directives))
    except Exception:
        return None


@rule(
    "DF400",
    "redundant directive: single-chunk TemporalMap is inert",
    Severity.WARNING,
    requires=("layer",),
)
def _check_redundant_directive(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A TemporalMap whose clamped size covers its whole local extent
    iterates once: the reuse engine's odometer filters on ``steps > 1``,
    so the directive is inert and the binding engine would infer an
    identical one if it were absent. Removing it is exact (theorem 2 of
    :mod:`repro.equiv.canonical`, re-proven bit-for-bit by
    ``crosscheck_equiv``). The last directive naming ``Y'``/``X'`` is
    exempt — its presence selects the output-coordinate representation.
    """
    flow = _equiv_dataflow(ctx)
    if flow is None or ctx.layer is None:
        return
    from repro.equiv.canonical import EQUIV_PROVENANCE, canonicalize

    form = canonicalize(flow, ctx.layer)
    if form.fallback:
        return
    for index in form.elided:
        directive = ctx.directives[index]
        dim = getattr(directive, "dim", "?")
        yield ctx.diag(
            "DF400",
            f"{ctx.name}: TemporalMap on {dim} produces a single chunk "
            f"covering its whole local extent — one step, no iteration: "
            f"removing it leaves the schedule bit-identical",
            index=index,
            provenance=EQUIV_PROVENANCE,
            fixit=FixIt(
                f"remove this directive; binding infers an identical "
                f"whole-extent iterator for {dim}"
            ),
        )


@rule(
    "DF401",
    "spatial directives not in canonical slot order",
    Severity.INFO,
    requires=("layer",),
)
def _check_noncanonical_order(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A level's spatial directives distribute jointly — the odometer
    collapses them into one fold entry with their offsets in a dict — so
    permuting which spatial directive occupies which slot is
    unobservable (theorem 3 of :mod:`repro.equiv.canonical`). Writing
    them in canonical (dimension-sorted) order makes textually different
    spellings of the same schedule identical, which is what the exec
    cache and ``--equiv-prune`` key on.
    """
    flow = _equiv_dataflow(ctx)
    if flow is None or ctx.layer is None:
        return
    from repro.equiv.canonical import EQUIV_PROVENANCE, canonicalize

    form = canonicalize(flow, ctx.layer)
    if form.fallback:
        return
    for index, (kind, dim, size, offset) in form.slot_changes:
        replacement = f"{'SpatialMap' if kind == 'S' else 'TemporalMap'}({size},{offset}) {dim}"
        yield ctx.diag(
            "DF401",
            f"{ctx.name}: spatial slot out of canonical order — slots of one "
            f"level commute, and in dimension-sorted order this slot holds "
            f"{replacement}",
            index=index,
            provenance=EQUIV_PROVENANCE,
            fixit=FixIt(
                "sort the level's SpatialMaps by dimension name",
                replacement=replacement,
            ),
        )


@rule(
    "DF402",
    "mapping is a symmetric twin of a library dataflow",
    Severity.INFO,
    requires=("layer",),
)
def _check_symmetric_twin(ctx: RuleContext) -> Iterator[Diagnostic]:
    """On a transpose-symmetric layer (square extents, symmetric
    operator coupling), a mapping whose canonical form is the row/column
    transposition of a library dataflow is a mirror-image schedule with
    the identical cost structure. Advisory: the orbit comparison is
    unconditional (no integer-activity certificate), so twins may differ
    in final float ulps — they are equivalent schedules regardless.
    """
    flow = _equiv_dataflow(ctx)
    if flow is None or ctx.layer is None:
        return
    from repro.equiv.canonical import EQUIV_PROVENANCE, canonicalize
    from repro.equiv.crosscheck import library_flows
    from repro.equiv.symmetry import layer_symmetries, orbit_key

    symmetries = layer_symmetries(ctx.layer)
    if not symmetries:
        return
    form = canonicalize(flow, ctx.layer)
    if form.fallback:
        return
    own_key = form.key
    own_orbit = orbit_key(own_key, symmetries)
    for lib_name, lib_flow in sorted(library_flows().items()):
        lib_key = canonicalize(lib_flow, ctx.layer).key
        if lib_key == own_key:
            continue  # identical schedule, not a twin
        if orbit_key(lib_key, symmetries) == own_orbit:
            yield ctx.diag(
                "DF402",
                f"{ctx.name}: on {ctx.layer.name} this mapping is the "
                f"row/column transpose of library dataflow {lib_name!r} — a "
                f"mirror-image schedule with identical cost structure",
                provenance=EQUIV_PROVENANCE,
            )
            return


@rule(
    "DF403",
    "mapping statically dominated by a library dataflow",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_statically_dominated(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A library mapping's *pessimistic* interval bound beats this
    mapping's *optimistic* bound on runtime, energy, and EDP (strictly
    on at least one): for this layer and accelerator the library mapping
    is provably no worse everywhere. Soundness is inherited from the
    interval abstract interpreter's over-approximation; mappings in the
    same equivalence orbit are skipped (a schedule cannot dominate
    itself).
    """
    flow = _equiv_dataflow(ctx)
    if flow is None or ctx.layer is None or ctx.accelerator is None:
        return
    from repro.absint import HardwareBox
    from repro.equiv.canonical import canonicalize
    from repro.equiv.crosscheck import library_flows
    from repro.equiv.dominance import DOMINANCE_PROVENANCE, dominance_certificate
    from repro.equiv.symmetry import layer_symmetries, orbit_key

    hw = HardwareBox.from_accelerator(ctx.accelerator)
    symmetries = layer_symmetries(ctx.layer)
    own_orbit = orbit_key(canonicalize(flow, ctx.layer).key, symmetries)
    for lib_name, lib_flow in sorted(library_flows(include_playground=False).items()):
        lib_orbit = orbit_key(canonicalize(lib_flow, ctx.layer).key, symmetries)
        if lib_orbit == own_orbit:
            continue
        certificate = dominance_certificate(lib_flow, flow, ctx.layer, hw)
        if certificate is None:
            continue
        yield ctx.diag(
            "DF403",
            f"{ctx.name}: statically dominated on {ctx.layer.name} — "
            f"library dataflow {lib_name!r} is provably no worse: "
            f"{certificate.describe()}",
            provenance=DOMINANCE_PROVENANCE,
        )
        return


# ======================================================================
# Buffer-capacity & roofline feasibility, backed by repro.capacity
# (DF500-DF504)
#
# These rules read the static occupancy analyzer: the bounds reproduce
# the engine's Figure-8 sizing formulas bit-for-bit on the same bound
# mapping, so every overflow verdict is certified, not estimated. The
# capacity rules only fire when the accelerator declares the relevant
# capacity (an unsized buffer is provisioned from the requirement);
# DF504 reads the roofline certificate and always applies. None are
# construction or binding-equivalent rules.
# ======================================================================
def _capacity_certificates(ctx: RuleContext):
    """The (bounds, roofline) pair for this mapping, or ``None``."""
    flow = _equiv_dataflow(ctx)
    if flow is None or ctx.layer is None or ctx.accelerator is None:
        return None
    try:
        from repro.capacity import classify_roofline

        roofline = classify_roofline(flow, ctx.layer, ctx.accelerator)
    except Exception:
        return None
    return roofline.bounds, roofline


def _innermost_map_index(ctx: RuleContext) -> Optional[int]:
    """Anchor index: the first map directive of the innermost level."""
    levels = ctx.levels
    if not levels or not levels[-1].maps:
        return None
    return levels[-1].maps[0][0]


@rule(
    "DF500",
    "L1 working set overflows the declared per-PE buffer",
    Severity.ERROR,
    requires=("layer", "accelerator"),
)
def _check_l1_overflow(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Even a single buffer slot of the innermost tile set — every
    tensor's clamped innermost chunk — exceeds the declared ``l1_size``.
    The bound is the engine's own Figure-8 working set, so no schedule
    of this mapping fits: the tiles must shrink or the buffer must grow.
    """
    certificates = _capacity_certificates(ctx)
    if certificates is None:
        return
    bounds, _ = certificates
    if bounds.l1.steady_fits:
        return
    from repro.capacity import CAPACITY_PROVENANCE

    capacity = bounds.l1.capacity_bytes
    steady = bounds.l1.steady_bytes
    yield ctx.diag(
        "DF500",
        f"{ctx.name}: innermost tile set needs {steady:,} B per PE but "
        f"l1_size is {capacity:,} B — over capacity even single-buffered",
        index=_innermost_map_index(ctx),
        provenance=CAPACITY_PROVENANCE,
        fixit=FixIt(
            f"shrink the innermost map sizes by at least "
            f"{steady / max(capacity, 1):.1f}x (largest tiles first), or "
            f"provision l1_size >= {bounds.l1.peak_bytes:,} B "
            f"({steady:,} B single-buffered)"
        ),
    )


@rule(
    "DF501",
    "L2 working set overflows the declared shared buffer",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_l2_overflow(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The array-wide unique top-level chunk, double buffered, exceeds
    the declared ``l2_size``. The engine does not reject such a design —
    it streams the overflow from DRAM instead (the ``l2_fits`` spill
    path), paying DRAM energy per re-fetch — so this is a performance
    warning, not an infeasibility.
    """
    certificates = _capacity_certificates(ctx)
    if certificates is None:
        return
    bounds, _ = certificates
    if bounds.l2.fits:
        return
    from repro.capacity import CAPACITY_PROVENANCE

    yield ctx.diag(
        "DF501",
        f"{ctx.name}: array working set needs {bounds.l2.peak_bytes:,} B "
        f"but l2_size is {bounds.l2.capacity_bytes:,} B — the overflow "
        f"streams from DRAM on every sweep",
        provenance=CAPACITY_PROVENANCE,
        fixit=FixIt(
            f"shrink the top-level temporal tiles, or provision "
            f"l2_size >= {bounds.l2.peak_bytes:,} B"
        ),
    )


@rule(
    "DF502",
    "double buffering infeasible at the declared L1 capacity",
    Severity.ERROR,
    requires=("layer", "accelerator"),
)
def _check_double_buffering_infeasible(ctx: RuleContext) -> Iterator[Diagnostic]:
    """One tile set fits the declared ``l1_size``, but the two live
    slots double buffering keeps (Figure 8's ``2 * max`` rule) do not.
    The engine's performance model *assumes* the overlap; on this
    capacity the real machine would serialize fetch and compute instead.
    """
    certificates = _capacity_certificates(ctx)
    if certificates is None:
        return
    bounds, _ = certificates
    if not bounds.double_buffered:
        return
    if not bounds.l1.steady_fits or bounds.l1.fits:
        return  # DF500 territory / fits outright
    from repro.capacity import CAPACITY_PROVENANCE

    yield ctx.diag(
        "DF502",
        f"{ctx.name}: double buffering needs {bounds.l1.peak_bytes:,} B "
        f"per PE (2 x {bounds.l1.steady_bytes:,} B) but l1_size is "
        f"{bounds.l1.capacity_bytes:,} B — communication cannot overlap "
        f"compute at this capacity",
        index=_innermost_map_index(ctx),
        provenance=CAPACITY_PROVENANCE,
        fixit=FixIt(
            f"provision l1_size >= {bounds.l1.peak_bytes:,} B, shrink the "
            f"innermost tiles, or model the machine single-buffered "
            f"(double_buffered=False)"
        ),
    )


@rule(
    "DF503",
    "declared buffer under 25% utilized at peak",
    Severity.WARNING,
    requires=("layer", "accelerator"),
)
def _check_buffer_underutilized(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The peak occupancy bound uses less than a quarter of a declared
    capacity: the SRAM is area and leakage the mapping cannot exploit.
    Fires per buffer; unsized buffers (provisioned from the requirement)
    are exempt by construction.
    """
    certificates = _capacity_certificates(ctx)
    if certificates is None:
        return
    bounds, _ = certificates
    from repro.capacity import CAPACITY_PROVENANCE
    from repro.capacity.bounds import UTILIZATION_FLOOR

    for level in (bounds.l1, bounds.l2):
        utilization = level.utilization
        if utilization is None or not level.fits:
            continue
        if utilization < UTILIZATION_FLOOR:
            yield ctx.diag(
                "DF503",
                f"{ctx.name}: {level.label} peaks at {level.peak_bytes:,} B "
                f"of {level.capacity_bytes:,} B declared "
                f"({utilization:.0%} utilized) — grow the tiles or shrink "
                f"the buffer",
                provenance=CAPACITY_PROVENANCE,
            )


@rule(
    "DF504",
    "certified NoC-bandwidth-bound at the declared bandwidth",
    Severity.INFO,
    requires=("layer", "accelerator"),
)
def _check_bandwidth_bound(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The roofline certificate's communication floor exceeds its
    compute floor: even with perfect overlap the NoC cannot feed the
    array, so the mapping is provably bandwidth-bound at this bandwidth.
    The message carries the closed-form break-even bandwidth at which
    the verdict flips.
    """
    certificates = _capacity_certificates(ctx)
    if certificates is None:
        return
    _, roofline = certificates
    if not roofline.bandwidth_bound:
        return
    from repro.capacity import CAPACITY_PROVENANCE

    yield ctx.diag(
        "DF504",
        f"{ctx.name}: certified bandwidth-bound on {ctx.layer.name} — "
        f"ingress floor {roofline.comm_floor_cycles:,.0f} cyc exceeds "
        f"compute floor {roofline.compute_floor_cycles:,.0f} cyc at "
        f"bw={roofline.noc_bandwidth}; break-even NoC bandwidth is "
        f"{roofline.crossover_bandwidth} elem/cycle",
        provenance=CAPACITY_PROVENANCE,
    )
