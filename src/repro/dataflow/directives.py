"""Data-centric mapping directives and symbolic size expressions.

The four directives of Section 3 of the paper are represented by two
dataclasses: :class:`MapDirective` (spatial or temporal — the order of
map directives *is* the data movement order) and
:class:`ClusterDirective`. Sizes are either plain integers or
:class:`SizeExpr` symbolic expressions over layer dimensions, written
exactly like the paper's Table 3 (``Sz(R)``, ``8 + Sz(S) - 1``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Mapping, Optional, Tuple, Union

from repro.errors import DataflowError, DataflowParseError
from repro.tensors.dims import validate_dim

#: A compiled size expression: (dim_sizes, strides) -> value.
_EvalFn = Callable[[Mapping[str, int], Mapping[str, int]], int]


@dataclass(frozen=True)
class SizeExpr:
    """A symbolic size: an arithmetic expression over layer quantities.

    Supported grammar (integer arithmetic)::

        expr   := term (('+' | '-') term)*
        term   := factor ('*' factor)*
        factor := INT | 'Sz' '(' DIM ')' | 'St' '(' DIM ')' | '(' expr ')'

    ``Sz(dim)`` is the dimension's extent (the paper's notation);
    ``St(dim)`` is the layer's stride along an activation axis (1 for
    non-activation dims), needed to write stride-portable tile sizes
    like ``(4-1)*St(Y)+Sz(R)`` (a chunk covering four output rows).

    The expression is validated syntactically at construction: empty
    text, trailing garbage (``"8)"``, ``"1,1"``), and unknown dimensions
    raise :class:`DataflowParseError` carrying the 0-based character
    ``position`` of the error, instead of misparsing silently and
    failing only when (or if) the size is evaluated.

    Parsing happens once per distinct expression text: construction
    compiles the text to a closure tree memoized in a module-level
    cache (never on the instance, which must stay picklable —
    directives cross process boundaries in the batch backend), so the
    binding engine's per-layer ``evaluate`` calls skip the tokenizer.
    """

    text: str

    def __post_init__(self) -> None:
        _compiled(self.text)

    def evaluate(
        self,
        dim_sizes: Mapping[str, int],
        strides: "Mapping[str, int] | None" = None,
    ) -> int:
        """Evaluate against concrete layer extents (and strides)."""
        return _compiled(self.text)(dim_sizes, strides or {})

    def __str__(self) -> str:
        return self.text


SizeLike = Union[int, SizeExpr, str]


def Sz(dim: str) -> SizeExpr:
    """The full extent of ``dim``: the paper's ``Sz(R)`` notation."""
    return SizeExpr(f"Sz({validate_dim(dim)})")


def St(dim: str) -> SizeExpr:
    """The layer stride along ``dim`` (1 for non-activation dims)."""
    return SizeExpr(f"St({validate_dim(dim)})")


@lru_cache(maxsize=None)
def _interned(text: str) -> SizeExpr:
    return SizeExpr(text)


def evaluate_size(
    size: SizeLike,
    dim_sizes: Mapping[str, int],
    strides: "Mapping[str, int] | None" = None,
) -> int:
    """Resolve an int / str / :class:`SizeExpr` size to a concrete int."""
    if isinstance(size, bool):
        raise DataflowError(f"size must be an int or expression, got {size!r}")
    if isinstance(size, int):
        return size
    if isinstance(size, str):
        size = _interned(size)
    if isinstance(size, SizeExpr):
        return size.evaluate(dim_sizes, strides)
    raise DataflowError(f"size must be an int or expression, got {size!r}")


_TOKEN_RE = re.compile(r"(?:(\d+)|(Sz|St)|([A-Z]'?)|([()+\-*]))")


class _Parser:
    """Recursive-descent compiler for :class:`SizeExpr`.

    Parsing validates structure (grammar and dimension names) without
    requiring dimension bindings and produces a closure tree evaluating
    the expression against ``(dim_sizes, strides)``; a missing ``Sz``
    binding surfaces only at evaluation. Every parse error carries the
    0-based character position of the offending token in ``position``.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = self._tokenize(text)
        self.pos = 0

    @staticmethod
    def _tokenize(text: str) -> List[Tuple[str, int]]:
        tokens: List[Tuple[str, int]] = []
        index = 0
        length = len(text)
        while index < length:
            if text[index].isspace():
                index += 1
                continue
            match = _TOKEN_RE.match(text, index)
            if match is None or match.lastindex is None:
                raise DataflowParseError(
                    f"bad size expression {text!r} at position {index}",
                    position=index,
                )
            tokens.append((match.group(match.lastindex), index))
            index = match.end()
        return tokens

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos][0] if self.pos < len(self.tokens) else None

    def _next(self) -> Optional[str]:
        token = self._peek()
        self.pos += 1
        return token

    def _here(self) -> int:
        """Character position of the token just consumed (or end of text)."""
        index = min(self.pos - 1, len(self.tokens) - 1)
        if index < 0 or self.pos - 1 >= len(self.tokens):
            return len(self.text)
        return self.tokens[index][1]

    def parse(self) -> _EvalFn:
        if not self.tokens:
            raise DataflowParseError(
                f"empty size expression {self.text!r}", position=0
            )
        fn = self._expr()
        if self._peek() is not None:
            position = self.tokens[self.pos][1]
            raise DataflowParseError(
                f"trailing tokens in size expression {self.text!r}"
                f" at position {position}",
                position=position,
            )
        return fn

    def _expr(self) -> _EvalFn:
        fn = self._term()
        while self._peek() in ("+", "-"):
            if self._next() == "+":
                fn = _add(fn, self._term())
            else:
                fn = _sub(fn, self._term())
        return fn

    def _term(self) -> _EvalFn:
        fn = self._factor()
        while self._peek() == "*":
            self._next()
            fn = _mul(fn, self._factor())
        return fn

    def _factor(self) -> _EvalFn:
        token = self._next()
        if token is None:
            raise DataflowParseError(
                f"unexpected end of expression {self.text!r}",
                position=len(self.text),
            )
        if token.isdigit():
            return _const(int(token))
        if token in ("Sz", "St"):
            func = token
            if self._next() != "(":
                raise DataflowParseError(
                    f"expected '(' after {func} in {self.text!r}",
                    position=self._here(),
                )
            dim = self._next()
            if dim is None:
                raise DataflowParseError(
                    f"expected dimension in {self.text!r}",
                    position=len(self.text),
                )
            try:
                validate_dim(dim)
            except ValueError as exc:
                raise DataflowParseError(
                    f"{exc} in size expression {self.text!r}",
                    position=self._here(),
                ) from None
            if self._next() != ")":
                raise DataflowParseError(
                    f"expected ')' after {func}({dim} in {self.text!r}",
                    position=self._here(),
                )
            if func == "St":
                return _stride(dim)
            return _extent(dim)
        if token == "(":
            fn = self._expr()
            if self._next() != ")":
                raise DataflowParseError(
                    f"unbalanced parentheses in {self.text!r}",
                    position=self._here(),
                )
            return fn
        raise DataflowParseError(
            f"unexpected token {token!r} in {self.text!r}",
            position=self._here(),
        )


def _const(value: int) -> _EvalFn:
    return lambda dim_sizes, strides: value


def _stride(dim: str) -> _EvalFn:
    return lambda dim_sizes, strides: strides.get(dim, 1)


def _extent(dim: str) -> _EvalFn:
    def fn(dim_sizes: Mapping[str, int], strides: Mapping[str, int]) -> int:
        try:
            return dim_sizes[dim]
        except KeyError:
            raise DataflowParseError(
                f"Sz({dim}) has no binding; known dims: {sorted(dim_sizes)}"
            ) from None

    return fn


def _add(lhs: _EvalFn, rhs: _EvalFn) -> _EvalFn:
    return lambda dim_sizes, strides: lhs(dim_sizes, strides) + rhs(
        dim_sizes, strides
    )


def _sub(lhs: _EvalFn, rhs: _EvalFn) -> _EvalFn:
    return lambda dim_sizes, strides: lhs(dim_sizes, strides) - rhs(
        dim_sizes, strides
    )


def _mul(lhs: _EvalFn, rhs: _EvalFn) -> _EvalFn:
    return lambda dim_sizes, strides: lhs(dim_sizes, strides) * rhs(
        dim_sizes, strides
    )


@lru_cache(maxsize=None)
def _compiled(text: str) -> _EvalFn:
    """The compiled evaluator for ``text`` (one parse per distinct text)."""
    return _Parser(text).parse()


class Directive:
    """Marker base class for dataflow directives."""


@dataclass(frozen=True)
class MapDirective(Directive):
    """``SpatialMap``/``TemporalMap`` ``(size, offset) dim``.

    ``size`` indices of ``dim`` are mapped per unit (PE/cluster for
    spatial maps, time step for temporal maps) and consecutive units
    shift by ``offset`` indices. ``offset < size`` overlaps chunks —
    the paper's convolutional (halo) reuse.

    Both quantities are expressed in the dimension's own index units at
    every cluster level. On the input coordinates Y/X an offset of ``1``
    therefore advances one *input* row/column (the spelling the diagonal
    joint (Y, R) walks of row-stationary mappings need), while a
    stride-portable "advance one output position" walk is written
    explicitly as ``St(Y)``/``St(X)`` — mirroring how tile sizes already
    spell ``(4-1)*St(Y)+Sz(R)``. Offsets are never scaled implicitly.
    """

    dim: str
    size: SizeLike
    offset: SizeLike
    spatial: bool

    def __post_init__(self) -> None:
        validate_dim(self.dim)

    @property
    def kind(self) -> str:
        return "SpatialMap" if self.spatial else "TemporalMap"

    def __str__(self) -> str:
        return f"{self.kind}({self.size},{self.offset}) {self.dim}"


@dataclass(frozen=True)
class ClusterDirective(Directive):
    """``Cluster(size)``: group units below into clusters of ``size``."""

    size: SizeLike

    def __str__(self) -> str:
        return f"Cluster({self.size})"


def temporal_map(size: SizeLike, offset: SizeLike, dim: str) -> MapDirective:
    """Build a ``TemporalMap(size, offset) dim`` directive."""
    return MapDirective(dim=dim, size=size, offset=offset, spatial=False)


def spatial_map(size: SizeLike, offset: SizeLike, dim: str) -> MapDirective:
    """Build a ``SpatialMap(size, offset) dim`` directive."""
    return MapDirective(dim=dim, size=size, offset=offset, spatial=True)
