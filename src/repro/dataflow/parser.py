"""Parser for the textual dataflow DSL.

The syntax follows the paper's listings (Table 3, Figure 4)::

    // KC-Partitioned (NVDLA-like)
    SpatialMap(1,1) K
    TemporalMap(64,64) C
    TemporalMap(Sz(R),Sz(R)) R
    TemporalMap(Sz(S),Sz(S)) S
    TemporalMap(Sz(R),1) Y
    TemporalMap(Sz(S),1) X
    Cluster(64)
    SpatialMap(1,1) C

Comments start with ``//`` or ``#``; blank lines are ignored. Sizes and
offsets are integer expressions over ``Sz(dim)``.
"""

from __future__ import annotations

import re
from typing import List

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    MapDirective,
    SizeExpr,
)
from repro.errors import DataflowParseError
from repro.tensors.dims import ALL_DIRECTIVE_DIMS

_MAP_RE = re.compile(
    r"^(?P<kind>SpatialMap|TemporalMap)\s*\(\s*(?P<args>.+)\s*\)\s*(?P<dim>[A-Z]'?)$"
)
_CLUSTER_RE = re.compile(r"^Cluster\s*\(\s*(?P<size>.+?)\s*\)$")


def _split_args(args: str, line_number: int) -> "tuple[str, str]":
    """Split ``size, offset`` on the comma at parenthesis depth zero."""
    depth = 0
    for index, char in enumerate(args):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            return args[:index].strip(), args[index + 1 :].strip()
    raise DataflowParseError(
        f"line {line_number}: expected 'size, offset' arguments, got {args!r}"
    )


def _parse_size(text: str) -> "int | SizeExpr":
    text = text.strip()
    if re.fullmatch(r"\d+", text):
        return int(text)
    return SizeExpr(text)


def parse_dataflow(text: str, name: str = "parsed") -> Dataflow:
    """Parse a dataflow from its textual DSL form."""
    directives: List[Directive] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("//")[0].split("#")[0].strip()
        if not line:
            continue
        map_match = _MAP_RE.match(line)
        if map_match:
            dim = map_match.group("dim")
            if dim not in ALL_DIRECTIVE_DIMS:
                raise DataflowParseError(
                    f"line {line_number}: unknown dimension {dim!r}"
                )
            size_text, offset_text = _split_args(map_match.group("args"), line_number)
            directives.append(
                MapDirective(
                    dim=dim,
                    size=_parse_size(size_text),
                    offset=_parse_size(offset_text),
                    spatial=map_match.group("kind") == "SpatialMap",
                )
            )
            continue
        cluster_match = _CLUSTER_RE.match(line)
        if cluster_match:
            directives.append(
                ClusterDirective(size=_parse_size(cluster_match.group("size")))
            )
            continue
        raise DataflowParseError(f"line {line_number}: cannot parse {raw_line!r}")
    if not directives:
        raise DataflowParseError("empty dataflow description")
    return Dataflow(name=name, directives=tuple(directives))
