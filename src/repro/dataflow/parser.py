"""Parser for the textual dataflow DSL.

The syntax follows the paper's listings (Table 3, Figure 4)::

    // KC-Partitioned (NVDLA-like)
    SpatialMap(1,1) K
    TemporalMap(64,64) C
    TemporalMap(Sz(R),Sz(R)) R
    TemporalMap(Sz(S),Sz(S)) S
    TemporalMap(Sz(R),1) Y
    TemporalMap(Sz(S),1) X
    Cluster(64)
    SpatialMap(1,1) C

Comments start with ``//`` or ``#``; blank lines are ignored. Sizes and
offsets are integer expressions over ``Sz(dim)``.

Two entry points: :func:`parse_dataflow` (strict — raises
:class:`~repro.errors.DataflowParseError` at the first bad line, as a
library loader wants) and :func:`scan_dataflow` (lenient — every bad
line becomes a ``DF002`` diagnostic with a source span and scanning
continues, which is what ``repro lint`` builds on).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    MapDirective,
    SizeExpr,
)
from repro.errors import DataflowParseError
from repro.lint.diagnostics import Diagnostic, Severity, SourceSpan
from repro.tensors.dims import ALL_DIRECTIVE_DIMS

_MAP_RE = re.compile(
    r"^(?P<kind>SpatialMap|TemporalMap)\s*\(\s*(?P<args>.+)\s*\)\s*(?P<dim>[A-Z]'?)$"
)
_CLUSTER_RE = re.compile(r"^Cluster\s*\(\s*(?P<size>.+?)\s*\)$")


@dataclass(frozen=True)
class ScanResult:
    """A lenient scan: directives with spans, plus syntax diagnostics.

    ``spans`` is parallel to ``directives``; ``diagnostics`` holds one
    ``DF002`` finding per unparsable line.
    """

    directives: Tuple[Directive, ...]
    spans: Tuple[SourceSpan, ...]
    diagnostics: Tuple[Diagnostic, ...]


def _split_args(args: str) -> "Optional[Tuple[str, str, int]]":
    """Split ``size, offset`` on the comma at parenthesis depth zero.

    Returns the stripped halves plus the comma's index within ``args``
    (so callers can map expression errors back to source columns).
    """
    depth = 0
    for index, char in enumerate(args):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            return args[:index].strip(), args[index + 1 :].strip(), index
    return None


def _parse_size(text: str) -> "int | SizeExpr":
    """Parse one size/offset argument.

    Raises :class:`DataflowParseError` (with a character ``position``
    relative to ``text``) for empty or malformed expressions — the
    ``SizeExpr`` constructor validates its grammar.
    """
    text = text.strip()
    if re.fullmatch(r"\d+", text):
        return int(text)
    return SizeExpr(text)


def scan_dataflow(text: str, name: str = "parsed") -> ScanResult:
    """Scan DSL text leniently; see :class:`ScanResult`."""
    directives: List[Directive] = []
    spans: List[SourceSpan] = []
    diagnostics: List[Diagnostic] = []

    def syntax_error(message: str, line_number: int, span: SourceSpan) -> None:
        diagnostics.append(
            Diagnostic(
                code="DF002",
                severity=Severity.ERROR,
                message=f"line {line_number}: {message}",
                span=span,
            )
        )

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("//")[0].split("#")[0].strip()
        if not line:
            continue
        column = raw_line.find(line) + 1
        span = SourceSpan(
            line=line_number,
            column=column,
            end_column=column + len(line),
            source=raw_line.rstrip("\n"),
        )
        def expression_span(arg_text: str, start_in_line: int, position: int) -> SourceSpan:
            """Narrow the line span to one size expression (`position` within it)."""
            lead = len(arg_text) - len(arg_text.lstrip())
            start = column + start_in_line + lead
            stripped = arg_text.strip()
            caret = start + min(max(position, 0), max(len(stripped) - 1, 0))
            return SourceSpan(
                line=line_number,
                column=caret,
                end_column=start + max(len(stripped), 1),
                source=raw_line.rstrip("\n"),
            )

        map_match = _MAP_RE.match(line)
        if map_match:
            dim = map_match.group("dim")
            if dim not in ALL_DIRECTIVE_DIMS:
                syntax_error(f"unknown dimension {dim!r}", line_number, span)
                continue
            args_text = map_match.group("args")
            args_start = map_match.start("args")
            split = _split_args(args_text)
            if split is None:
                syntax_error(
                    f"expected 'size, offset' arguments, got {args_text!r}",
                    line_number,
                    span,
                )
                continue
            size_text, offset_text, comma = split
            try:
                size = _parse_size(size_text)
            except DataflowParseError as exc:
                syntax_error(
                    f"bad size expression: {exc.args[0]}",
                    line_number,
                    expression_span(
                        args_text[:comma], args_start, exc.position or 0
                    ),
                )
                continue
            try:
                offset = _parse_size(offset_text)
            except DataflowParseError as exc:
                syntax_error(
                    f"bad offset expression: {exc.args[0]}",
                    line_number,
                    expression_span(
                        args_text[comma + 1 :],
                        args_start + comma + 1,
                        exc.position or 0,
                    ),
                )
                continue
            directives.append(
                MapDirective(
                    dim=dim,
                    size=size,
                    offset=offset,
                    spatial=map_match.group("kind") == "SpatialMap",
                )
            )
            spans.append(span)
            continue
        cluster_match = _CLUSTER_RE.match(line)
        if cluster_match:
            try:
                cluster_size = _parse_size(cluster_match.group("size"))
            except DataflowParseError as exc:
                syntax_error(
                    f"bad cluster size expression: {exc.args[0]}",
                    line_number,
                    expression_span(
                        cluster_match.group("size"),
                        cluster_match.start("size"),
                        exc.position or 0,
                    ),
                )
                continue
            directives.append(ClusterDirective(size=cluster_size))
            spans.append(span)
            continue
        syntax_error(f"cannot parse {raw_line!r}", line_number, span)

    return ScanResult(
        directives=tuple(directives),
        spans=tuple(spans),
        diagnostics=tuple(diagnostics),
    )


def parse_dataflow(text: str, name: str = "parsed") -> Dataflow:
    """Parse a dataflow from its textual DSL form (strict)."""
    scan = scan_dataflow(text, name=name)
    if scan.diagnostics:
        raise DataflowParseError(
            scan.diagnostics[0].message,
            diagnostics=list(scan.diagnostics),
            span=scan.diagnostics[0].span,
        )
    if not scan.directives:
        empty = Diagnostic(
            code="DF001",
            severity=Severity.ERROR,
            message="empty dataflow description",
        )
        raise DataflowParseError(empty.message, diagnostics=[empty])
    return Dataflow(name=name, directives=scan.directives)
