"""The :class:`Dataflow` container: an ordered directive list.

A dataflow is split into *cluster levels* by its ``Cluster`` directives:
directives above the first ``Cluster`` form level 0 (mapped across the
top-level clusters), directives between the first and second ``Cluster``
form level 1, and so on. Multiple ``SpatialMap`` directives inside one
level distribute their dimensions *jointly* (aligned): sub-cluster ``i``
takes chunk ``i`` along every spatially mapped dimension, which is how
the paper expresses Eyeriss' diagonal row-stationary mapping (Figure 6
and Table 3's YR-P).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    MapDirective,
    SizeLike,
)
from repro.errors import DataflowError
from repro.tensors import dims as D


@dataclass(frozen=True)
class LevelSpec:
    """One cluster level: its map directives and the cluster size below.

    ``cluster_size`` is the argument of the ``Cluster`` directive that
    *closes* this level (i.e. the size of the sub-clusters the next level
    runs across); ``None`` for the innermost level.
    """

    maps: Tuple[MapDirective, ...]
    cluster_size: "SizeLike | None"


@dataclass(frozen=True)
class Dataflow:
    """A named, ordered list of mapping directives."""

    name: str
    directives: Tuple[Directive, ...]

    def __post_init__(self) -> None:
        # Structural validation is delegated to the static mapping
        # analyzer's construction rules (DF001-DF004); the raised error
        # keeps the legacy message of the first finding and carries the
        # full diagnostic list.
        from repro.lint.engine import construction_diagnostics

        diagnostics = construction_diagnostics(self.name, self.directives)
        errors = [d for d in diagnostics if d.is_error]
        if errors:
            raise DataflowError(errors[0].message, diagnostics=diagnostics)

    def levels(self) -> List[LevelSpec]:
        """Split the directive list into cluster levels."""
        levels: List[LevelSpec] = []
        current: List[MapDirective] = []
        for directive in self.directives:
            if isinstance(directive, ClusterDirective):
                levels.append(LevelSpec(maps=tuple(current), cluster_size=directive.size))
                current = []
            else:
                current.append(directive)
        levels.append(LevelSpec(maps=tuple(current), cluster_size=None))
        return levels

    def map_directives(self) -> List[MapDirective]:
        """All map directives, in order, ignoring level boundaries."""
        return [d for d in self.directives if isinstance(d, MapDirective)]

    def uses_output_coordinates(self, axis: str) -> bool:
        """Whether the row (``axis='row'``) or column axis uses Y'/X'."""
        target = D.YP if axis == "row" else D.XP
        return any(
            isinstance(d, MapDirective) and d.dim == target for d in self.directives
        )

    def describe(self) -> str:
        """Multi-line, human-readable rendering of the directive list."""
        lines = [f"Dataflow {self.name}:"]
        indent = 0
        for directive in self.directives:
            lines.append("  " * (indent + 1) + str(directive))
            if isinstance(directive, ClusterDirective):
                indent += 1
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def dataflow(name: str, *directives: Directive) -> Dataflow:
    """Convenience constructor: ``dataflow("x", tmap(...), smap(...))``."""
    return Dataflow(name=name, directives=tuple(directives))
