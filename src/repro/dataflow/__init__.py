"""The data-centric dataflow IR (Section 3 of the paper).

A dataflow is an ordered list of directives:

- ``TemporalMap(size, offset) dim`` — iterate ``dim`` across time steps;
- ``SpatialMap(size, offset) dim`` — distribute ``dim`` across PEs;
- ``Cluster(size)`` — group the units below into logical clusters,
  opening a new (inner) cluster level.

Sizes and offsets may be symbolic expressions over layer dimensions
(``Sz(R)``, ``8 + Sz(S) - 1``) so one dataflow describes a family of
mappings across layers, exactly as Table 3 of the paper writes them.
"""

from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    MapDirective,
    SizeExpr,
    Sz,
    evaluate_size,
    spatial_map,
    temporal_map,
)
from repro.dataflow.dataflow import Dataflow, LevelSpec
from repro.dataflow.loopnest import Loop, loopnest_to_dataflow
from repro.dataflow.parser import parse_dataflow

__all__ = [
    "Dataflow",
    "LevelSpec",
    "Directive",
    "MapDirective",
    "ClusterDirective",
    "SizeExpr",
    "Sz",
    "evaluate_size",
    "temporal_map",
    "spatial_map",
    "parse_dataflow",
    "Loop",
    "loopnest_to_dataflow",
]
