"""Compute-centric (loop-nest) to data-centric conversion.

The paper positions its directives as "an intermediate representation
which can be extracted from a high-level loop-nest notation or
specified directly" (Section 2.5/3.1, Figure 4(b) vs 4(c)). This module
implements that extraction for tiled, explicitly-parallel loop nests:

- a :class:`Loop` names a dimension, the chunk ("tile") of it one
  iteration handles, the step between consecutive iterations (defaults
  to the chunk — sliding windows use a smaller step), and whether the
  loop is a ``parallel_for``;
- :func:`loopnest_to_dataflow` walks the nest outer-to-inner. A
  sequential loop becomes a ``TemporalMap``. The first ``parallel_for``
  becomes the top-level ``SpatialMap``; each *subsequent* parallel loop
  opens a new cluster level sized by its own trip count, exactly how
  Figure 4(b)'s two `par_for` loops become Figure 4(c)'s
  ``SpatialMap`` / ``Cluster`` / ``SpatialMap`` structure.

Only the loop structure is converted; the array subscripts are implied
by the dimension names (the same restriction the paper's Section 4.4
states: tensor indices coupled in affine one/two-dim combinations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.model.layer import Layer

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    SizeLike,
    spatial_map,
    temporal_map,
)
from repro.errors import DataflowError
from repro.tensors.dims import validate_dim
from repro.util.intmath import ceil_div


@dataclass(frozen=True)
class Loop:
    """One loop of a tiled nest.

    ``size`` is the chunk of ``dim`` one iteration covers; ``step`` the
    advance between iterations (default: ``size``; smaller steps model
    sliding windows); ``trip_count`` the number of iterations, required
    for parallel loops that open cluster levels (it sizes the cluster).
    """

    dim: str
    size: SizeLike = 1
    step: Optional[SizeLike] = None
    parallel: bool = False
    trip_count: Optional[int] = None

    def __post_init__(self) -> None:
        validate_dim(self.dim)

    @property
    def offset(self) -> SizeLike:
        return self.size if self.step is None else self.step


def loopnest_to_dataflow(
    loops: Sequence[Loop],
    name: str = "from-loopnest",
    verify_against: Optional["Layer"] = None,
) -> Dataflow:
    """Convert a loop nest to directives; see the module docstring.

    With ``verify_against`` the converted mapping is handed to the
    iteration-space verifier (:mod:`repro.verify`): if the schedule is
    *proven* not to cover that layer's compute space exactly once —
    e.g. the nest's steps skip indices or re-walk tiles — the
    conversion raises :class:`DataflowError` carrying the concrete
    missed/double-counted MAC coordinate instead of returning a
    mapping that silently computes the wrong thing.
    """
    if not loops:
        raise DataflowError("a loop nest needs at least one loop")

    directives: List[Directive] = []
    seen_parallel = False
    for index, loop in enumerate(loops):
        if loop.parallel:
            if seen_parallel:
                # A deeper parallel loop opens an inner cluster level
                # sized by its trip count.
                if loop.trip_count is None:
                    raise DataflowError(
                        f"parallel loop on {loop.dim} needs a trip_count to "
                        f"size its cluster level"
                    )
                directives.append(ClusterDirective(loop.trip_count))
            directives.append(spatial_map(loop.size, loop.offset, loop.dim))
            seen_parallel = True
        else:
            directives.append(temporal_map(loop.size, loop.offset, loop.dim))
    dataflow = Dataflow(name=name, directives=tuple(directives))
    if verify_against is not None:
        from repro.verify import Verdict, verify_dataflow

        result = verify_dataflow(dataflow, verify_against)
        if result.verdict is Verdict.REFUTED:
            assert result.counterexample is not None
            raise DataflowError(
                f"loop nest {name!r} does not cover layer "
                f"{verify_against.name!r} exactly once: "
                f"{result.counterexample.describe()}"
            )
    return dataflow


def infer_trip_count(extent: int, size: int, step: int) -> int:
    """Iterations of a loop covering ``extent`` in ``size`` chunks."""
    if size >= extent:
        return 1
    return ceil_div(extent - size, step) + 1
