"""The paper's dataflow library.

Contains:

- the five evaluation dataflows of Table 3 (C-P, X-P, YX-P, YR-P, KC-P),
  motivated by input-channel-parallel accelerators, 1-D weight-stationary
  designs, ShiDianNao, Eyeriss, and NVDLA respectively;
- the six 1-D convolution playground dataflows of Figure 5 (A-F);
- the extended row-stationary example of Figure 6;
- simple generic weight- and output-stationary dataflows for examples.

All Table 3 dataflows are written with symbolic ``Sz(...)`` sizes so they
bind to any convolution layer, and with explicit ``St(...)`` offsets on
the input coordinates Y/X so they stay stride-portable: an offset of
``St(Y)`` advances one *output* row per step, while a literal ``1``
advances one *input* row — the spelling the diagonal (Y, R) walks of
YR-P and row-stationary rely on.
"""

from __future__ import annotations

from typing import Dict

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import ClusterDirective, St, Sz, spatial_map, temporal_map
from repro.tensors import dims as D


def c_partitioned() -> Dataflow:
    """C-P: input-channel parallelism, large spatial reduction (Table 3)."""
    return Dataflow(
        name="C-P",
        directives=(
            temporal_map(1, 1, D.K),
            temporal_map(Sz(D.R), St(D.Y), D.Y),
            temporal_map(Sz(D.S), St(D.X), D.X),
            temporal_map(Sz(D.R), Sz(D.R), D.R),
            temporal_map(Sz(D.S), Sz(D.S), D.S),
            spatial_map(1, 1, D.C),
        ),
    )


def x_partitioned() -> Dataflow:
    """X-P: input-column parallelism, weight-stationary (Table 3)."""
    return Dataflow(
        name="X-P",
        directives=(
            temporal_map(1, 1, D.K),
            temporal_map(1, 1, D.C),
            temporal_map(Sz(D.R), Sz(D.R), D.R),
            temporal_map(Sz(D.S), Sz(D.S), D.S),
            temporal_map(Sz(D.R), St(D.Y), D.Y),
            spatial_map(Sz(D.S), St(D.X), D.X),
        ),
    )


def yx_partitioned(tile_x: int = 8) -> Dataflow:
    """YX-P: 2-D activation parallelism, ShiDianNao-style (Table 3)."""
    return Dataflow(
        name="YX-P",
        directives=(
            temporal_map(1, 1, D.K),
            spatial_map(Sz(D.R), St(D.Y), D.Y),
            temporal_map(f"({tile_x}-1)*St(X)+Sz(S)", f"{tile_x}*St(X)", D.X),
            temporal_map(1, 1, D.C),
            temporal_map(Sz(D.R), Sz(D.R), D.R),
            temporal_map(Sz(D.S), Sz(D.S), D.S),
            ClusterDirective(tile_x),
            spatial_map(Sz(D.S), St(D.X), D.X),
        ),
    )


def yr_partitioned(c_tile: int = 2, k_tile: int = 2, x_tile: int = 1) -> Dataflow:
    """YR-P: row-stationary, Eyeriss-style (Table 3).

    The inner cluster distributes Y and R *jointly* across ``Sz(R)`` PEs:
    PE ``i`` takes input row ``y0 + i`` and filter row ``i``, so every PE
    in the cluster produces partial sums for the same output row
    (spatial reduction), and inputs are reused diagonally.

    ``c_tile``/``k_tile``/``x_tile`` are the mapping (tile) sizes the
    paper's DSE sweeps; larger tiles need larger buffers but expose more
    temporal reuse.

    The outer Y/X offsets carry explicit ``St(...)`` factors (advance
    whole output positions); the *inner* cluster's joint (Y, R) offsets
    stay a literal 1 — adjacent input row paired with adjacent filter
    row — which is what keeps the diagonal sound on strided layers.
    """
    x_size = Sz(D.S) if x_tile == 1 else f"({x_tile}-1)*St(X)+Sz(S)"
    return Dataflow(
        name="YR-P",
        directives=(
            temporal_map(c_tile, c_tile, D.C),
            temporal_map(k_tile, k_tile, D.K),
            spatial_map(Sz(D.R), St(D.Y), D.Y),
            temporal_map(x_size, f"{x_tile}*St(X)", D.X),
            temporal_map(Sz(D.R), Sz(D.R), D.R),
            temporal_map(Sz(D.S), Sz(D.S), D.S),
            ClusterDirective(Sz(D.R)),
            spatial_map(1, 1, D.Y),
            spatial_map(1, 1, D.R),
        ),
    )


def kc_partitioned(c_tile: int = 64, y_tile: int = 1, x_tile: int = 1) -> Dataflow:
    """KC-P: output/input-channel parallelism, NVDLA-style (Table 3).

    ``c_tile`` is the inner cluster size (input channels reduced
    spatially); ``y_tile``/``x_tile`` grow the activation chunk each
    step maps (bigger buffers, more convolutional reuse) — the tiling
    levers the paper's DSE explores.
    """
    y_size = Sz(D.R) if y_tile == 1 else f"({y_tile}-1)*St(Y)+Sz(R)"
    x_size = Sz(D.S) if x_tile == 1 else f"({x_tile}-1)*St(X)+Sz(S)"
    return Dataflow(
        name="KC-P",
        directives=(
            spatial_map(1, 1, D.K),
            temporal_map(c_tile, c_tile, D.C),
            temporal_map(Sz(D.R), Sz(D.R), D.R),
            temporal_map(Sz(D.S), Sz(D.S), D.S),
            temporal_map(y_size, f"{y_tile}*St(Y)", D.Y),
            temporal_map(x_size, f"{x_tile}*St(X)", D.X),
            ClusterDirective(c_tile),
            spatial_map(1, 1, D.C),
        ),
    )


#: The five dataflows of Table 3, by partitioning-strategy name.
def table3_dataflows() -> Dict[str, Dataflow]:
    """Fresh instances of the five Table 3 dataflows."""
    return {
        "C-P": c_partitioned(),
        "X-P": x_partitioned(),
        "YX-P": yx_partitioned(),
        "YR-P": yr_partitioned(),
        "KC-P": kc_partitioned(),
    }


# ----------------------------------------------------------------------
# Figure 5: the 1-D convolution dataflow playground
# ----------------------------------------------------------------------
def fig5_playground() -> Dict[str, Dataflow]:
    """The six 1-D convolution dataflows of Figure 5.

    All run the Figure 4 workload (X' = 12, S = 6) on 3 PEs (6 for F):

    - A — output-stationary, outputs spatially partitioned;
    - B — A with the directive order interchanged: weight-stationary;
    - C — collaborative weight-stationary (S spatially mapped);
    - D — collaborative output-stationary (spatial reduction);
    - E — SpatialMap(2,2) S: partial temporal reuse of inputs;
    - F — clustered/tiled collaborative weight-stationary.
    """
    return {
        "A": Dataflow(
            "fig5-A",
            (spatial_map(1, 1, D.XP), temporal_map(1, 1, D.S)),
        ),
        "B": Dataflow(
            "fig5-B",
            (temporal_map(1, 1, D.S), spatial_map(1, 1, D.XP)),
        ),
        "C": Dataflow(
            "fig5-C",
            (spatial_map(1, 1, D.S), temporal_map(1, 1, D.XP)),
        ),
        "D": Dataflow(
            "fig5-D",
            (temporal_map(1, 1, D.XP), spatial_map(1, 1, D.S)),
        ),
        "E": Dataflow(
            "fig5-E",
            (spatial_map(2, 2, D.S), temporal_map(1, 1, D.XP)),
        ),
        "F": Dataflow(
            "fig5-F",
            (
                temporal_map(3, 3, D.S),
                spatial_map(1, 1, D.XP),
                ClusterDirective(3),
                spatial_map(1, 1, D.S),
                temporal_map(1, 1, D.XP),
            ),
        ),
    }


def row_stationary_fig6() -> Dataflow:
    """The extended row-stationary example of Figure 6 (six PEs).

    Hardcodes Figure 6's 3x3 tile sizes (the design envelope), but the
    Y/X walks carry explicit ``St(...)`` offsets, and the inner (Y, R)
    diagonal keeps unit input-row offsets, so the mapping stays sound on
    strided 3x3 layers.
    """
    return Dataflow(
        name="row-stationary-fig6",
        directives=(
            temporal_map(1, 1, D.N),
            temporal_map(3, 3, D.C),
            temporal_map(2, 2, D.K),
            spatial_map(3, St(D.Y), D.Y),
            temporal_map(3, St(D.X), D.X),
            temporal_map(3, 3, D.R),
            temporal_map(3, 3, D.S),
            ClusterDirective(3),
            temporal_map(1, 1, D.N),
            temporal_map(1, 1, D.C),
            temporal_map(1, 1, D.K),
            spatial_map(1, 1, D.Y),
            spatial_map(1, 1, D.R),
            temporal_map(3, St(D.X), D.X),
            temporal_map(3, 3, D.S),
        ),
    )


# ----------------------------------------------------------------------
# Generic single-level dataflows for examples and tests
# ----------------------------------------------------------------------
def weight_stationary_1level() -> Dataflow:
    """Hold one filter chunk per PE while sweeping the activation plane.

    Weight dims (K spatial, C/R/S outer temporal) enclose the Y/X sweep,
    so weights stay put across the innermost steps — the classic
    weight-stationary schedule.
    """
    return Dataflow(
        name="WS-K",
        directives=(
            temporal_map(1, 1, D.N),
            spatial_map(1, 1, D.K),
            temporal_map(1, 1, D.C),
            temporal_map(Sz(D.R), Sz(D.R), D.R),
            temporal_map(Sz(D.S), Sz(D.S), D.S),
            temporal_map(Sz(D.R), St(D.Y), D.Y),
            temporal_map(Sz(D.S), St(D.X), D.X),
        ),
    )


def output_stationary_1level() -> Dataflow:
    """Hold one output pixel set per PE; sweep reductions innermost."""
    return Dataflow(
        name="OS-YX",
        directives=(
            temporal_map(1, 1, D.N),
            temporal_map(1, 1, D.K),
            spatial_map(Sz(D.R), St(D.Y), D.Y),
            temporal_map(Sz(D.S), St(D.X), D.X),
            temporal_map(1, 1, D.C),
            temporal_map(Sz(D.R), Sz(D.R), D.R),
            temporal_map(Sz(D.S), Sz(D.S), D.S),
        ),
    )
