"""Command-line interface: ``maestro-repro`` / ``python -m repro``.

Subcommands:

- ``analyze`` — run the cost model for a zoo model (or one layer) under
  a named dataflow and print the per-layer report table; with
  ``--symbolic`` (plus ``--range DIM=LO:HI``/``--widen``) it instead
  abstract-interprets the mapping over symbolic shape intervals and
  prints per-mapping validity envelopes — interval bounds on every
  cost quantity plus the ``DF2xx`` range-certificate lints —
  optionally cross-checked against concrete runs (``--crosscheck``);
  with ``--comm`` it prints the static communication classification
  (multicast/unicast/forwarding/reduction per level and tensor) from
  :mod:`repro.comm` instead;
- ``lint`` — statically check a dataflow (DSL file or library entry),
  optionally against a layer and hardware config, and print a
  rustc-style diagnostic report (or ``--format json``); exits 1 when
  the mapping has errors; ``--comm`` appends the communication detail
  view, and ``lint --explain DFxxx`` documents any registered rule;
- ``verify`` — prove (or refute with a concrete MAC counterexample)
  that a mapping covers a layer's compute space exactly once;
  ``--library`` checks every stock mapping, ``--audit`` classifies
  which lint rules the verifier certifies as sound, ``--comm``
  differentially replays the communication classifier against the
  reuse engine and brute-force PE access-set enumeration; exits 1 when
  any mapping is not proven (or any classification disagrees);
- ``validate`` — compare the analytical model against the reference
  simulator on a layer;
- ``dse`` — run a small hardware design-space exploration for a layer
  (``--symbolic-prune`` turns on the sound interval branch-and-bound;
  ``--comm-prune`` with ``--no-spatial-reduction`` skips mappings the
  communication classifier proves write-racy on that hardware);
- ``tune`` — search the auto-tuner's template space for a layer
  (``--symbolic-prune`` screens buffer-cap violations symbolically,
  ``--comm-prune`` screens DF300 write-races on reduction-free
  hardware);
- ``profile`` — trace one layer's analysis (and optionally simulation)
  through the observability subsystem and print/write the span tree,
  per-phase timing table, and metrics;
- ``dataflows`` / ``models`` — list what is available.

``dse`` and ``tune`` sweep through the batch-evaluation backend
(:mod:`repro.exec`): ``--jobs N`` fans cost-model evaluations out over
worker processes, ``--executor`` pins the executor (``vector`` runs
whole hardware grids through the NumPy engine in ``repro.vector``; see
``docs/vectorized-engine.md``), and ``--cache``/``--no-cache`` toggle
the memoization cache (see ``docs/evaluation-backend.md``). Results are
bit-identical either way.

``validate``, ``dse``, and ``tune`` also accept ``--trace-out FILE``
(Perfetto/Chrome trace JSON, load in https://ui.perfetto.dev) and
``--metrics-out FILE`` (Prometheus text) — either flag switches the
observability subsystem on for the run (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.adaptive import adaptive_analysis
from repro.dataflow.dataflow import Dataflow
from repro.dataflow.library import table3_dataflows
from repro.dataflow.parser import parse_dataflow
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.zoo import MODELS, build
from repro.util.text_table import format_table


def _load_dataflow(name_or_path: str) -> Dataflow:
    catalog = table3_dataflows()
    if name_or_path in catalog:
        return catalog[name_or_path]
    try:
        with open(name_or_path) as handle:
            return parse_dataflow(handle.read(), name=name_or_path)
    except FileNotFoundError:
        raise SystemExit(
            f"unknown dataflow {name_or_path!r}: not in {sorted(catalog)} "
            f"and not a readable file"
        )


def _accelerator(args: argparse.Namespace) -> Accelerator:
    return Accelerator(
        num_pes=args.pes,
        spatial_reduction=not getattr(args, "no_spatial_reduction", False),
        noc=NoC(
            bandwidth=args.bandwidth,
            avg_latency=args.latency,
            multicast=not getattr(args, "no_multicast", False),
        ),
    )


def _obs_setup(args: argparse.Namespace) -> None:
    """Switch tracing on when ``--trace-out``/``--metrics-out`` ask for it."""
    if getattr(args, "trace_out", None) or getattr(args, "metrics_out", None):
        from repro import obs

        obs.configure(enabled=True, reset=True)


def _obs_finish(args: argparse.Namespace) -> None:
    """Write the trace/metrics files a command was asked for."""
    if getattr(args, "trace_out", None):
        from repro.obs.profile import write_trace

        path = write_trace(args.trace_out)
        print(f"trace written to {path} — load it in https://ui.perfetto.dev")
    if getattr(args, "metrics_out", None):
        from repro.obs.profile import write_metrics

        path = write_metrics(args.metrics_out)
        print(f"metrics written to {path} (Prometheus text format)")


def _parse_ranges(specs: "Optional[List[str]]") -> "dict":
    """Parse repeatable ``--range DIM=LO:HI`` flags into a dict."""
    from repro.tensors import dims as D

    ranges: dict = {}
    for spec in specs or []:
        try:
            dim, _, span = spec.partition("=")
            lo_text, _, hi_text = span.partition(":")
            lo, hi = int(lo_text), int(hi_text or lo_text)
        except ValueError:
            raise SystemExit(f"bad --range {spec!r}: expected DIM=LO:HI")
        if dim not in D.CANONICAL_DIMS:
            raise SystemExit(
                f"bad --range {spec!r}: unknown dimension {dim!r} "
                f"(choose from {sorted(D.CANONICAL_DIMS)})"
            )
        if lo < 1 or hi < lo:
            raise SystemExit(f"bad --range {spec!r}: need 1 <= LO <= HI")
        ranges[dim] = (lo, hi)
    return ranges


def _cmd_analyze_symbolic(args: argparse.Namespace) -> int:
    """``analyze --symbolic``: per-mapping shape-validity envelopes."""
    import json

    from repro.absint.engine import HardwareBox
    from repro.absint.report import ENVELOPE_HEADERS, envelope_row, symbolic_envelope
    from repro.absint.shapes import ShapeBox

    network = build(args.model)
    accelerator = _accelerator(args)
    dataflow = _load_dataflow(args.dataflow)
    layers = [network.layer(args.layer)] if args.layer else list(network.layers)
    ranges = _parse_ranges(args.range)
    hw = HardwareBox.from_accelerator(accelerator)
    envelopes = []
    for layer in layers:
        box = ShapeBox.from_layer(
            layer,
            ranges={d: r for d, r in ranges.items() if d in layer.dims} or None,
            widen=args.widen,
        )
        envelopes.append(
            symbolic_envelope(box, dataflow, hw, crosscheck=args.crosscheck)
        )
    if args.format == "json":
        print(json.dumps(envelopes, indent=2, sort_keys=True))
    else:
        print(
            format_table(
                ENVELOPE_HEADERS,
                [envelope_row(envelope) for envelope in envelopes],
                title=(
                    f"{network.name} under {dataflow.name}: symbolic envelopes "
                    f"over {accelerator.num_pes} PEs"
                ),
            )
        )
        for envelope in envelopes:
            for diagnostic in envelope.get("diagnostics") or []:
                assert isinstance(diagnostic, dict)
                print(
                    f"  {diagnostic['severity']}[{diagnostic['code']}] "
                    f"({diagnostic['provenance']}): {diagnostic['message']}"
                )
    failed = any(
        envelope.get("crosscheck") and not envelope["crosscheck"]["ok"]  # type: ignore[index]
        for envelope in envelopes
    )
    return 1 if failed else 0


def _cmd_analyze_comm(args: argparse.Namespace) -> int:
    """``analyze --comm``: static communication classification tables."""
    import json

    from repro.comm import classify_dataflow, render_comm_summary, render_comm_table

    network = build(args.model)
    accelerator = _accelerator(args)
    dataflow = _load_dataflow(args.dataflow)
    layers = [network.layer(args.layer)] if args.layer else list(network.layers)
    analyses = [classify_dataflow(dataflow, layer, accelerator) for layer in layers]
    if args.format == "json":
        print(json.dumps([a.to_dict() for a in analyses], indent=2, sort_keys=True))
        return 0
    for analysis in analyses:
        print(render_comm_table(analysis))
        print(render_comm_summary(analysis))
        print()
    return 0


def _cmd_analyze_capacity(args: argparse.Namespace) -> int:
    """``analyze --capacity``: certified occupancy bounds + roofline verdict."""
    import json

    from repro.capacity import classify_roofline, render_capacity_table

    network = build(args.model)
    accelerator = _accelerator(args)
    dataflow = _load_dataflow(args.dataflow)
    layers = [network.layer(args.layer)] if args.layer else list(network.layers)
    certificates = [
        classify_roofline(dataflow, layer, accelerator) for layer in layers
    ]
    if args.format == "json":
        print(
            json.dumps(
                [c.to_dict() for c in certificates], indent=2, sort_keys=True
            )
        )
        return 0
    for certificate in certificates:
        print(render_capacity_table(certificate.bounds, certificate))
        print()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if sum((args.symbolic, args.comm, args.capacity)) > 1:
        raise SystemExit("--comm, --capacity, and --symbolic are mutually exclusive")
    if args.symbolic:
        return _cmd_analyze_symbolic(args)
    if args.range or args.crosscheck or args.widen != 1.0:
        raise SystemExit("--range/--widen/--crosscheck require --symbolic")
    if args.comm:
        return _cmd_analyze_comm(args)
    if args.capacity:
        return _cmd_analyze_capacity(args)
    network = build(args.model)
    accelerator = _accelerator(args)
    dataflow = _load_dataflow(args.dataflow)
    layers = [network.layer(args.layer)] if args.layer else list(network.layers)
    if args.detail:
        from repro.report import layer_report

        for layer in layers:
            print(layer_report(analyze_layer(layer, dataflow, accelerator)))
            print()
        return 0
    rows = []
    for layer in layers:
        try:
            report = analyze_layer(layer, dataflow, accelerator)
        except Exception as error:  # surfaced per-layer, sweep continues
            rows.append([layer.name, "-", "-", "-", "-", f"error: {error}"])
            continue
        rows.append(
            [
                layer.name,
                f"{report.runtime:.3e}",
                f"{report.utilization:.2f}",
                f"{report.energy_total:.3e}",
                f"{report.noc_bw_req_gbps:.1f}",
                f"{report.reuse_factors.get('I', float('nan')):.1f}",
            ]
        )
    print(
        format_table(
            ["layer", "cycles", "util", "energy (xMAC)", "BW req (GB/s)", "act reuse"],
            rows,
            title=f"{network.name} under {dataflow.name} on {accelerator.num_pes} PEs",
        )
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        explain_rule,
        lint_dataflow,
        lint_text,
        nearest_rule,
        rule_families,
    )

    if args.explain:
        try:
            print(explain_rule(args.explain))
        except KeyError:
            families = ", ".join(sorted(rule_families()))
            suggestion = nearest_rule(args.explain)
            hint = f"did you mean {suggestion}? " if suggestion else ""
            raise SystemExit(
                f"error: unknown lint rule {args.explain!r} ({hint}"
                f"valid rule families: {families}; "
                f"run `repro lint --explain DF000` for an example)"
            )
        return 0
    if not args.dataflow:
        raise SystemExit("lint: pass a dataflow name/path (or use --explain DFxxx)")
    if args.layer and not args.model:
        raise SystemExit("--layer requires --model")
    if args.comm and not args.model:
        raise SystemExit("--comm requires --model (a layer to bind against)")
    if args.capacity and not args.model:
        raise SystemExit("--capacity requires --model (a layer to bind against)")
    layer = None
    if args.model:
        network = build(args.model)
        layer = network.layer(args.layer) if args.layer else network.layers[0]
    accelerator = Accelerator(
        num_pes=args.pes,
        l1_size=args.l1,
        l2_size=args.l2,
        spatial_reduction=not args.no_spatial_reduction,
        noc=NoC(
            bandwidth=args.bandwidth,
            avg_latency=args.latency,
            multicast=not args.no_multicast,
        ),
    )
    catalog = table3_dataflows()
    dataflow = None
    if args.dataflow in catalog:
        dataflow = catalog[args.dataflow]
        report = lint_dataflow(dataflow, layer, accelerator)
    else:
        try:
            with open(args.dataflow) as handle:
                text = handle.read()
        except OSError:
            raise SystemExit(
                f"unknown dataflow {args.dataflow!r}: not in {sorted(catalog)} "
                f"and not a readable file"
            )
        except UnicodeDecodeError as exc:
            raise SystemExit(f"{args.dataflow}: not a text file ({exc})")
        report = lint_text(
            text,
            name=args.dataflow,
            source=args.dataflow,
            layer=layer,
            accelerator=accelerator,
        )
        if args.comm or args.capacity:
            try:
                dataflow = parse_dataflow(text, name=args.dataflow)
            except Exception:
                dataflow = None  # syntax errors: report covers it below
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
    if args.comm and args.format == "text":
        from repro.comm import classify_dataflow, render_comm_summary, render_comm_table

        if dataflow is None:
            print("comm: mapping does not parse; no communication analysis")
        else:
            assert layer is not None
            try:
                analysis = classify_dataflow(dataflow, layer, accelerator)
            except Exception as error:
                print(f"comm: mapping does not bind ({error}); no analysis")
            else:
                print()
                print(render_comm_table(analysis))
                print(render_comm_summary(analysis))
    if args.capacity and args.format == "text":
        from repro.capacity import classify_roofline, render_capacity_table

        if dataflow is None:
            print("capacity: mapping does not parse; no capacity analysis")
        else:
            assert layer is not None
            try:
                certificate = classify_roofline(dataflow, layer, accelerator)
            except Exception as error:
                print(f"capacity: mapping does not bind ({error}); no analysis")
            else:
                print()
                print(render_capacity_table(certificate.bounds, certificate))
    return 1 if report.has_errors else 0


def _stock_catalog() -> "dict":
    """Every mapping the library ships, keyed like the golden tests."""
    from repro.dataflow.library import (
        fig5_playground,
        output_stationary_1level,
        row_stationary_fig6,
        weight_stationary_1level,
    )

    catalog = dict(table3_dataflows())
    catalog.update({f"fig5-{key}": flow for key, flow in fig5_playground().items()})
    catalog["RS"] = row_stationary_fig6()
    catalog["WS-K"] = weight_stationary_1level()
    catalog["OS-YX"] = output_stationary_1level()
    return catalog


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.model.layer import conv2d
    from repro.verify import DEFAULT_BUDGET, audit_rules, verify_dataflow

    budget = args.budget if args.budget is not None else DEFAULT_BUDGET

    if args.audit:
        audits = audit_rules()
        if args.format == "json":
            print(json.dumps([a.to_dict() for a in audits.values()], indent=2))
            return 0
        for audit in audits.values():
            mark = "certified" if audit.certified else "heuristic"
            print(f"{audit.code}  {audit.category:20s} [{mark}] {audit.title}")
            for line in audit.evidence:
                print(f"    - {line}")
        return 0

    catalog = _stock_catalog()
    flows: "dict" = {}
    if args.library:
        flows.update(catalog)
    for target in args.targets:
        if target in catalog:
            flows[target] = catalog[target]
        else:
            try:
                with open(target) as handle:
                    flows[target] = parse_dataflow(handle.read(), name=target)
            except OSError:
                raise SystemExit(
                    f"unknown dataflow {target!r}: not in {sorted(catalog)} "
                    "and not a readable file"
                )
    if not flows:
        raise SystemExit("nothing to verify: pass dataflow targets or --library")

    if args.layer and not args.model:
        raise SystemExit("--layer requires --model")
    if args.model:
        network = build(args.model)
        layers = (
            [network.layer(args.layer)] if args.layer else list(network.layers)
        )
    else:
        # Synthetic workloads that exercise channels, sliding rows and
        # columns, edge tiles, and — since the YR-P offset-propagation
        # fix — a strided layer, without being slow to enumerate.
        layers = [
            conv2d("verify-default", k=8, c=8, y=18, x=18, r=3, s=3),
            conv2d("verify-strided", k=8, c=8, y=19, x=19, r=3, s=3, stride=2),
        ]

    if args.comm:
        from repro.verify import crosscheck_comm

        reports = []
        for name, flow in flows.items():
            for layer in layers:
                reports.append(crosscheck_comm(flow, layer))
        all_ok = all(report.ok for report in reports)
        if args.format == "json":
            payload = {
                "reports": [report.to_dict() for report in reports],
                "all_ok": all_ok,
            }
            print(json.dumps(payload, indent=2))
        else:
            for report in reports:
                print(report.render())
            agree = sum(report.ok for report in reports)
            print(
                f"{agree}/{len(reports)} mapping-layer classifications agree "
                "with both oracles (reuse engine + brute-force enumeration)"
            )
        return 0 if all_ok else 1

    if args.capacity:
        from repro.verify import crosscheck_capacity

        reports = []
        for name, flow in flows.items():
            for layer in layers:
                reports.append(crosscheck_capacity(flow, layer))
        all_ok = all(report.ok for report in reports)
        if args.format == "json":
            payload = {
                "reports": [report.to_dict() for report in reports],
                "all_ok": all_ok,
            }
            print(json.dumps(payload, indent=2))
        else:
            for report in reports:
                print(report.render())
            agree = sum(report.ok for report in reports)
            print(
                f"{agree}/{len(reports)} mapping-layer capacity bounds agree "
                "with both oracles (cost-engine sizing + occupancy simulation)"
            )
        return 0 if all_ok else 1

    results = []
    for name, flow in flows.items():
        for layer in layers:
            results.append(verify_dataflow(flow, layer, budget=budget))
    all_proven = all(result.proven for result in results)
    if args.format == "json":
        payload = {
            "results": [result.to_dict() for result in results],
            "all_proven": all_proven,
        }
        print(json.dumps(payload, indent=2))
    else:
        for result in results:
            print(result.render())
        proven = sum(result.proven for result in results)
        print(f"{proven}/{len(results)} mapping-layer pairs proven covered exactly once")
    return 0 if all_proven else 1


def _cmd_adaptive(args: argparse.Namespace) -> int:
    network = build(args.model)
    accelerator = _accelerator(args)
    result = adaptive_analysis(
        network, table3_dataflows(), accelerator, metric=args.metric
    )
    rows = [
        [choice.layer_name, choice.dataflow_name, f"{choice.report.runtime:.3e}"]
        for choice in result.choices
    ]
    print(format_table(["layer", "best dataflow", "cycles"], rows))
    print(f"total runtime: {result.runtime:.3e} cycles")
    print(f"total energy : {result.energy_total:.3e} x MAC")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.simulator import simulate_layer

    _obs_setup(args)
    network = build(args.model)
    layer = network.layer(args.layer)
    accelerator = _accelerator(args)
    dataflow = _load_dataflow(args.dataflow)
    report = analyze_layer(layer, dataflow, accelerator)
    sim = simulate_layer(layer, dataflow, accelerator)
    error = (report.runtime - sim.runtime) / sim.runtime * 100.0
    print(f"analytical : {report.runtime:.4e} cycles")
    print(f"simulated  : {sim.runtime:.4e} cycles ({sim.steps_total} steps)")
    print(f"error      : {error:+.2f}%")
    _obs_finish(args)
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.dse import explore
    from repro.dse.space import (
        DesignSpace,
        default_bandwidths,
        default_pe_counts,
        kc_partitioned_variants,
        yr_partitioned_variants,
    )

    _obs_setup(args)
    network = build(args.model)
    layer = network.layer(args.layer)
    variants = (
        kc_partitioned_variants()
        if args.dataflow.upper().startswith("KC")
        else yr_partitioned_variants()
    )
    space = DesignSpace(
        pe_counts=default_pe_counts(max_pes=args.max_pes, step=args.pe_step),
        noc_bandwidths=default_bandwidths(),
        dataflow_variants=variants,
    )
    result = explore(
        layer,
        space,
        area_budget=args.area,
        power_budget=args.power,
        verify_coverage=args.verify_coverage,
        executor=args.executor,
        jobs=args.jobs,
        cache=args.cache,
        symbolic_prune=args.symbolic_prune,
        spatial_reduction=not args.no_spatial_reduction,
        noc_multicast=not args.no_multicast,
        comm_prune=args.comm_prune,
        equiv_prune=args.equiv_prune,
        capacity_prune=args.capacity_prune,
    )
    stats = result.statistics
    print(
        f"explored {stats.explored} designs ({stats.valid} valid, "
        f"{stats.pruned} pruned, {stats.static_rejects} lint-rejected, "
        f"{stats.coverage_rejects} coverage-refuted, "
        f"{stats.comm_rejects} comm-race pruned, "
        f"{stats.capacity_rejects} capacity pruned, "
        f"{stats.symbolic_rejects} symbolically infeasible, "
        f"{stats.bnb_pruned} branch-and-bound pruned, "
        f"{stats.equiv_replays} equivalence-replayed, "
        f"{stats.cost_model_calls} cost-model calls, "
        f"{stats.cache_hits} cache hits, executor={stats.executor}) in "
        f"{stats.elapsed_seconds:.2f}s ({stats.effective_rate:.0f} designs/s)"
    )
    from repro.obs.profile import digest_line

    print(
        digest_line(
            evaluated=stats.evaluated,
            cost_model_calls=stats.cost_model_calls,
            cache_hits=stats.cache_hits,
            pruned_lint=stats.static_rejects,
            pruned_verify=stats.coverage_rejects,
            wall_seconds=stats.elapsed_seconds,
        )
    )
    for label, point in (
        ("throughput-optimal", result.throughput_optimal),
        ("energy-optimal", result.energy_optimal),
        ("edp-optimal", result.edp_optimal),
    ):
        if point is None:
            print(f"{label}: none within budget")
            continue
        print(
            f"{label}: {point.tile_label} PEs={point.num_pes} BW={point.noc_bandwidth} "
            f"L1={point.l1_size}B L2={point.l2_size}B thpt={point.throughput:.1f} "
            f"energy={point.energy:.3e} area={point.area:.2f}mm2 power={point.power:.0f}mW"
        )
    _obs_finish(args)
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tuner import tune_layer

    _obs_setup(args)
    network = build(args.model)
    layer = network.layer(args.layer)
    accelerator = _accelerator(args)
    result = tune_layer(
        layer,
        accelerator,
        objective=args.objective,
        strategy=args.strategy,
        budget=args.budget,
        top_k=args.top_k,
        max_l1_bytes=args.max_l1,
        max_l2_bytes=args.max_l2,
        verify_coverage=args.verify_coverage,
        symbolic_prune=args.symbolic_prune,
        comm_prune=args.comm_prune,
        equiv_prune=args.equiv_prune,
        capacity_prune=args.capacity_prune,
        executor=args.executor,
        jobs=args.jobs,
        cache=args.cache,
    )
    rows = [
        [
            candidate.spec.name,
            f"{candidate.report.runtime:.3e}",
            f"{candidate.report.energy_total:.3e}",
            f"{candidate.score:.3e}",
        ]
        for candidate in result.top
    ]
    print(
        format_table(
            ["candidate", "cycles", "energy (xMAC)", f"{result.objective} score"],
            rows,
            title=f"{layer.name}: top {len(result.top)} of {result.evaluated} evaluated",
        )
    )
    print(
        f"rejected {result.rejected} candidates "
        f"({result.statically_rejected} by the static analyzer, "
        f"{result.coverage_rejected} coverage-refuted, "
        f"{result.comm_rejected} comm-race screened, "
        f"{result.capacity_rejected} capacity screened, "
        f"{result.symbolic_rejected} symbolically over buffer caps); "
        f"{result.equiv_replayed} equivalence-replayed; "
        f"{result.cache_hits} cost-model answers served from cache"
    )
    from repro.obs.profile import digest_line

    print(
        digest_line(
            evaluated=result.evaluated,
            cost_model_calls=result.cost_model_calls,
            cache_hits=result.cache_hits,
            pruned_lint=result.statically_rejected,
            pruned_verify=result.coverage_rejected,
            wall_seconds=result.elapsed_seconds,
        )
    )
    _obs_finish(args)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.exporters import metrics_table, span_summary_table, span_tree
    from repro.obs.trace import spans as trace_spans

    network = build(args.model)
    layer = network.layer(args.layer) if args.layer else network.layers[0]
    accelerator = _accelerator(args)
    dataflow = _load_dataflow(args.dataflow)

    obs.configure(enabled=True, reset=True)
    for _ in range(args.repeat):
        analyze_layer(layer, dataflow, accelerator)
    if args.simulate:
        from repro.simulator import simulate_layer

        simulate_layer(layer, dataflow, accelerator)

    recorded = trace_spans()
    print(
        span_summary_table(
            recorded,
            title=f"{layer.name} under {dataflow.name} (x{args.repeat})",
        )
    )
    print()
    print(span_tree(recorded, max_depth=args.depth))
    print()
    print(metrics_table(obs.metrics_snapshot()))
    _obs_finish(args)
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    for name in sorted(MODELS):
        network = build(name)
        print(f"{name:14s} {len(network.layers):4d} layers  {network.total_ops():.3e} ops")
    return 0


def _cmd_dataflows(args: argparse.Namespace) -> int:
    for name, dataflow in table3_dataflows().items():
        print(dataflow.describe())
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.app import ServeConfig, serve_main

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        job_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        default_shards=args.shards,
        cache=args.cache,
        allow_shutdown=args.allow_remote_shutdown,
    )
    try:
        asyncio.run(serve_main(config))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="maestro-repro",
        description="MAESTRO reproduction: DNN dataflow cost analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_hw(p: argparse.ArgumentParser) -> None:
        p.add_argument("--pes", type=int, default=256, help="number of PEs")
        p.add_argument("--bandwidth", type=int, default=32, help="NoC elems/cycle")
        p.add_argument("--latency", type=int, default=2, help="NoC average latency")

    def add_verify_coverage(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--verify-coverage",
            action="store_true",
            help="soundly prune mappings the iteration-space verifier "
            "refutes (proven missed/double-counted MACs)",
        )

    def add_symbolic_prune(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--symbolic-prune",
            action="store_true",
            help="soundly skip cost-model calls using interval bounds from "
            "the symbolic abstract interpreter (optima are bit-identical)",
        )

    def add_comm_caps(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--no-spatial-reduction",
            action="store_true",
            help="model hardware without an adder tree / psum accumulation "
            "path (spatially-mapped reductions become DF300 write-races)",
        )
        p.add_argument(
            "--no-multicast",
            action="store_true",
            help="model a unicast-only NoC without fan-out wiring "
            "(multicast tensors trigger DF301 duplication warnings)",
        )

    def add_comm_prune(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--comm-prune",
            action="store_true",
            help="on hardware without spatial-reduction support, soundly "
            "skip mappings the communication classifier proves write-racy "
            "(DF300); on reduction-capable hardware the screen never runs, "
            "so optima are bit-identical",
        )

    def add_equiv_prune(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--equiv-prune",
            action="store_true",
            help="evaluate one representative per canonical-form "
            "equivalence class and replay its result to the symmetric "
            "twins (repro.equiv; optima are bit-identical)",
        )

    def add_capacity_prune(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--capacity-prune",
            action="store_true",
            help="soundly skip cost-model calls using the certified "
            "occupancy bounds from the static capacity analyzer "
            "(repro.capacity; optima are bit-identical)",
        )

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker processes for the batch backend (default: all cores)",
        )
        p.add_argument(
            "--executor",
            choices=["auto", "serial", "process", "vector"],
            default="auto",
            help="evaluation executor (default: auto-select by workload "
            "shape; grid-style sweeps use the vectorized whole-grid engine)",
        )
        p.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="memoize cost-model results (--no-cache disables; "
            "set REPRO_CACHE_DIR to persist the cache on disk)",
        )

    def add_obs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            help="enable tracing and write a Perfetto/Chrome trace JSON "
            "(load in https://ui.perfetto.dev)",
        )
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="enable tracing and write metrics in Prometheus text format",
        )

    p_analyze = sub.add_parser("analyze", help="run the cost model")
    p_analyze.add_argument("--model", required=True, choices=sorted(MODELS))
    p_analyze.add_argument("--dataflow", default="KC-P")
    p_analyze.add_argument("--layer", help="single layer name (default: all)")
    p_analyze.add_argument(
        "--detail", action="store_true", help="full per-layer report"
    )
    p_analyze.add_argument(
        "--symbolic",
        action="store_true",
        help="abstract-interpret over symbolic shape ranges and print "
        "per-mapping validity envelopes (interval bounds + DF2xx verdicts)",
    )
    p_analyze.add_argument(
        "--range",
        action="append",
        metavar="DIM=LO:HI",
        help="symbolic interval for a layer dimension (repeatable, e.g. "
        "--range K=64:2048); requires --symbolic",
    )
    p_analyze.add_argument(
        "--widen",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="widen every non-unit dimension by FACTOR down and up "
        "(default 1.0 = point box); requires --symbolic",
    )
    p_analyze.add_argument(
        "--crosscheck",
        action="store_true",
        help="differentially check the intervals against concrete "
        "cost-model runs at the box corners; requires --symbolic",
    )
    p_analyze.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="symbolic envelope / comm output format (with --symbolic/--comm)",
    )
    p_analyze.add_argument(
        "--comm",
        action="store_true",
        help="print the static communication classification (multicast/"
        "unicast/forwarding/reduction per level and tensor) instead of "
        "the cost table",
    )
    p_analyze.add_argument(
        "--capacity",
        action="store_true",
        help="print the certified buffer occupancy bounds and roofline "
        "feasibility verdict instead of the cost table",
    )
    add_hw(p_analyze)
    add_comm_caps(p_analyze)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_lint = sub.add_parser("lint", help="statically check a dataflow")
    p_lint.add_argument(
        "dataflow",
        nargs="?",
        help="library dataflow name or DSL file path (optional with --explain)",
    )
    p_lint.add_argument(
        "--explain",
        metavar="CODE",
        help="print the full documentation of one lint rule (e.g. DF300) "
        "and exit",
    )
    p_lint.add_argument(
        "--comm",
        action="store_true",
        help="append the communication detail view (per-level/tensor "
        "pattern table); requires --model and --format text",
    )
    p_lint.add_argument(
        "--capacity",
        action="store_true",
        help="append the capacity detail view (per-buffer occupancy "
        "bounds + roofline verdict); requires --model and --format text",
    )
    p_lint.add_argument(
        "--model", choices=sorted(MODELS), help="zoo model to lint against"
    )
    p_lint.add_argument(
        "--layer", help="layer name (default: first layer of --model)"
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    p_lint.add_argument("--l1", type=int, help="L1 scratchpad bytes per PE")
    p_lint.add_argument("--l2", type=int, help="shared L2 buffer bytes")
    add_hw(p_lint)
    add_comm_caps(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_verify = sub.add_parser(
        "verify", help="prove exactly-once MAC coverage of a mapping"
    )
    p_verify.add_argument(
        "targets",
        nargs="*",
        help="library dataflow names or DSL file paths",
    )
    p_verify.add_argument(
        "--library",
        action="store_true",
        help="verify every stock mapping the library ships",
    )
    p_verify.add_argument(
        "--audit",
        action="store_true",
        help="classify which lint rules the verifier certifies as sound",
    )
    p_verify.add_argument(
        "--comm",
        action="store_true",
        help="differentially verify the communication classifier against "
        "the reuse engine and brute-force PE access-set enumeration; "
        "exits 1 on any mismatch",
    )
    p_verify.add_argument(
        "--capacity",
        action="store_true",
        help="differentially verify the static capacity bounds against "
        "the cost engine's buffer sizing and an occupancy simulation; "
        "exits 1 on any violation",
    )
    p_verify.add_argument(
        "--model", choices=sorted(MODELS), help="zoo model to verify against"
    )
    p_verify.add_argument(
        "--layer", help="layer name (default: every layer of --model)"
    )
    p_verify.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    p_verify.add_argument(
        "--budget",
        type=int,
        default=None,
        help="cell-update budget for exact enumeration (default: 2e6)",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_adaptive = sub.add_parser("adaptive", help="best dataflow per layer")
    p_adaptive.add_argument("--model", required=True, choices=sorted(MODELS))
    p_adaptive.add_argument("--metric", default="runtime", choices=["runtime", "energy", "edp"])
    add_hw(p_adaptive)
    p_adaptive.set_defaults(func=_cmd_adaptive)

    p_validate = sub.add_parser("validate", help="model vs reference simulator")
    p_validate.add_argument("--model", required=True, choices=sorted(MODELS))
    p_validate.add_argument("--layer", required=True)
    p_validate.add_argument("--dataflow", default="KC-P")
    add_hw(p_validate)
    add_obs(p_validate)
    p_validate.set_defaults(func=_cmd_validate)

    p_dse = sub.add_parser("dse", help="hardware design-space exploration")
    p_dse.add_argument("--model", required=True, choices=sorted(MODELS))
    p_dse.add_argument("--layer", required=True)
    p_dse.add_argument("--dataflow", default="KC-P", choices=["KC-P", "YR-P"])
    p_dse.add_argument("--area", type=float, default=16.0, help="mm^2 budget")
    p_dse.add_argument("--power", type=float, default=450.0, help="mW budget")
    p_dse.add_argument("--max-pes", type=int, default=512)
    p_dse.add_argument("--pe-step", type=int, default=8)
    add_verify_coverage(p_dse)
    add_symbolic_prune(p_dse)
    add_comm_caps(p_dse)
    add_comm_prune(p_dse)
    add_equiv_prune(p_dse)
    add_capacity_prune(p_dse)
    add_backend(p_dse)
    add_obs(p_dse)
    p_dse.set_defaults(func=_cmd_dse)

    p_tune = sub.add_parser("tune", help="auto-tune a dataflow for a layer")
    p_tune.add_argument("--model", required=True, choices=sorted(MODELS))
    p_tune.add_argument("--layer", required=True)
    p_tune.add_argument(
        "--objective", default="runtime", choices=["runtime", "energy", "edp"]
    )
    p_tune.add_argument(
        "--strategy", default="exhaustive", choices=["exhaustive", "random"]
    )
    p_tune.add_argument(
        "--budget", type=int, default=200, help="candidates for --strategy random"
    )
    p_tune.add_argument("--top-k", type=int, default=5, help="candidates to print")
    p_tune.add_argument(
        "--max-l1", type=int, default=None, help="reject candidates over this L1 bytes"
    )
    p_tune.add_argument(
        "--max-l2", type=int, default=None, help="reject candidates over this L2 bytes"
    )
    add_hw(p_tune)
    add_comm_caps(p_tune)
    add_verify_coverage(p_tune)
    add_symbolic_prune(p_tune)
    add_comm_prune(p_tune)
    add_equiv_prune(p_tune)
    add_capacity_prune(p_tune)
    add_backend(p_tune)
    add_obs(p_tune)
    p_tune.set_defaults(func=_cmd_tune)

    p_profile = sub.add_parser(
        "profile", help="trace one layer's analysis through repro.obs"
    )
    p_profile.add_argument("--model", required=True, choices=sorted(MODELS))
    p_profile.add_argument(
        "--layer", help="layer name (default: first layer of --model)"
    )
    p_profile.add_argument("--dataflow", default="KC-P")
    p_profile.add_argument(
        "--simulate",
        action="store_true",
        help="also trace one reference-simulator run",
    )
    p_profile.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="analyze the layer N times (averages out timer noise)",
    )
    p_profile.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="D",
        help="limit the printed span tree to depth D",
    )
    add_hw(p_profile)
    add_obs(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_models = sub.add_parser("models", help="list zoo models")
    p_models.set_defaults(func=_cmd_models)

    p_dataflows = sub.add_parser("dataflows", help="list library dataflows")
    p_dataflows.set_defaults(func=_cmd_dataflows)

    p_serve = sub.add_parser(
        "serve", help="run the async analysis server (DSE-as-a-service)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8787, help="bind port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        metavar="N",
        help="jobs allowed to run at once",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        metavar="N",
        help="jobs allowed to wait for a slot before 503",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECS",
        help="per-job wall-clock timeout",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=15.0,
        metavar="SECS",
        help="grace period for in-flight jobs on shutdown",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=4,
        metavar="N",
        help="default shard count for DSE jobs that do not pin one",
    )
    p_serve.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable the shared cross-request outcome cache",
    )
    p_serve.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="enable POST /admin/shutdown (CI smoke lanes)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
