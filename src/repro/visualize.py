"""Per-PE data-mapping enumeration (the paper's Figures 5/6 views).

Figure 6(d) tabulates, per PE and per time step, exactly which tensor
index ranges the row-stationary dataflow maps. This module generates
those tables for any (layer, dataflow, accelerator) triple:

- :func:`enumerate_mappings` walks the bound schedule's first time
  steps and, for every PE (one sub-unit pick per cluster level),
  derives each tensor's index box from the chunk positions;
- :func:`mapping_table` renders the result like the figure, one row per
  PE per step.

Replicated boxes across PEs (or across steps) are the reuse
opportunities the paper reads off this table: identical weight boxes
in both clusters -> spatial multicast; identical output boxes within a
cluster -> spatial reduction; identical boxes across steps -> temporal
reuse.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.engines.binding import bind_dataflow
from repro.engines.reuse import build_odometer
from repro.engines.tensor_analysis import analyze_tensors
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer
from repro.simulator.regions import tensor_box
from repro.util.text_table import format_table


@dataclass(frozen=True)
class PEMapping:
    """The index boxes one PE holds at one time step."""

    step: int
    pe_coordinates: Tuple[int, ...]  # sub-unit index per cluster level
    boxes: Mapping[str, Tuple[Tuple[int, int], ...]]  # tensor -> axis ranges

    @property
    def pe_label(self) -> str:
        return "/".join(str(index) for index in self.pe_coordinates)


def enumerate_mappings(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    steps: int = 2,
) -> List[PEMapping]:
    """The first ``steps`` time steps' per-PE mappings."""
    bound = bind_dataflow(dataflow, layer, accelerator)
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    sizes = bound.innermost().chunk_sizes()

    entries = []
    for level in bound.levels:
        for entry in build_odometer(level):
            if entry.steps > 1:
                entries.append((level.index, entry))

    # Spatial structure: per level, the per-sub-unit chunk shifts.
    level_info = [
        (level.index, level.width, dict(level.spatial_offsets))
        for level in bound.levels
    ]

    mappings: List[PEMapping] = []
    counters = [0] * len(entries)
    for step in range(steps):
        # Temporal starts from the odometer counters.
        base: Dict[str, int] = {dim: 0 for dim in sizes}
        for (level_index, entry), counter in zip(entries, counters):
            # Fold-entry offsets already include the width factor.
            for dim, offset in entry.advancing_offsets.items():
                base[dim] += counter * offset

        # Every PE = one sub-unit pick per level.
        for picks in itertools.product(
            *[range(width) for _, width, _ in level_info]
        ):
            starts = dict(base)
            for (level_index, width, offsets), pick in zip(level_info, picks):
                for dim, offset in offsets.items():
                    if offset:
                        starts[dim] = starts.get(dim, 0) + pick * offset
            boxes = {}
            for info in tensors.tensors:
                box = tensor_box(info.axes, starts, sizes)
                boxes[info.name] = tuple(
                    (interval.start, interval.stop) for interval in box.intervals
                )
            mappings.append(
                PEMapping(step=step, pe_coordinates=picks, boxes=boxes)
            )

        # Advance the odometer by one innermost tick.
        for index in range(len(entries) - 1, -1, -1):
            counters[index] += 1
            if counters[index] < entries[index][1].steps:
                break
            counters[index] = 0
    return mappings


def mapping_table(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    tensor: str,
    steps: int = 2,
) -> str:
    """Render one tensor's Figure 6(d)-style mapping table."""
    mappings = enumerate_mappings(layer, dataflow, accelerator, steps)
    bound = bind_dataflow(dataflow, layer, accelerator)
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    info = tensors.tensor(tensor)
    axis_names = ["x".join(axis.dims) for axis in info.axes]

    rows = []
    for mapping in mappings:
        ranges = mapping.boxes[tensor]
        rows.append(
            [mapping.step, mapping.pe_label]
            + [
                f"{start}-{stop - 1}" if stop - start > 1 else str(start)
                for start, stop in ranges
            ]
        )
    return format_table(
        ["step", "PE"] + axis_names,
        rows,
        title=f"{tensor} mapping under {dataflow.name} on {layer.name}",
    )
